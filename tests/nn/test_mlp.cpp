#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace socpinn::nn {
namespace {

TEST(Mlp, MakeBuildsAlternatingLayers) {
  util::Rng rng(1);
  Mlp net = Mlp::make({3, 16, 32, 16, 1}, rng);
  // dense, relu, dense, relu, dense, relu, dense -> 7 layers.
  EXPECT_EQ(net.num_layers(), 7u);
  EXPECT_EQ(net.input_dim(), 3u);
  EXPECT_EQ(net.output_dim(), 1u);
}

TEST(Mlp, PaperBranchParameterCounts) {
  util::Rng rng(1);
  // Branch 1: 3 inputs. Branch 2: 4 inputs. Hidden 16/32/16, scalar out.
  Mlp b1 = Mlp::make({3, 16, 32, 16, 1}, rng);
  Mlp b2 = Mlp::make({4, 16, 32, 16, 1}, rng);
  const std::size_t p1 = b1.num_params();
  const std::size_t p2 = b2.num_params();
  EXPECT_EQ(p1, 3u * 16 + 16 + 16u * 32 + 32 + 32u * 16 + 16 + 16u + 1);
  // The full two-branch model of the paper: 2,322 trainable parameters.
  EXPECT_EQ(p1 + p2, 2322u);
}

TEST(Mlp, MakeRejectsTooFewDims) {
  util::Rng rng(1);
  EXPECT_THROW((void)Mlp::make({3}, rng), std::invalid_argument);
}

TEST(Mlp, AddRejectsNull) {
  Mlp net;
  EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

TEST(Mlp, DeepCopyIsIndependent) {
  util::Rng rng(3);
  Mlp a = Mlp::make({2, 4, 1}, rng);
  Mlp b = a;
  const Matrix x(1, 2, std::vector<double>{0.3, -0.4});
  const double before = b.predict_scalar(x.row(0));
  // Mutate a's weights; b must not change.
  for (Matrix* p : a.params()) p->fill(0.0);
  EXPECT_DOUBLE_EQ(b.predict_scalar(x.row(0)), before);
  EXPECT_DOUBLE_EQ(a.predict_scalar(x.row(0)), 0.0);
}

TEST(Mlp, PredictScalarMatchesForward) {
  util::Rng rng(4);
  Mlp net = Mlp::make({3, 8, 1}, rng);
  const Matrix x(1, 3, std::vector<double>{0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(net.predict_scalar(x.row(0)), net.forward(x)(0, 0));
}

TEST(Mlp, DescribeListsLayers) {
  util::Rng rng(1);
  Mlp net = Mlp::make({3, 4, 1}, rng);
  const std::string desc = net.describe();
  EXPECT_NE(desc.find("dense(3->4)"), std::string::npos);
  EXPECT_NE(desc.find("relu"), std::string::npos);
  EXPECT_NE(desc.find("dense(4->1)"), std::string::npos);
}

TEST(Mlp, MacsMatchHandCount) {
  util::Rng rng(1);
  Mlp net = Mlp::make({3, 16, 32, 16, 1}, rng);
  EXPECT_EQ(net.macs_per_sample(), 3u * 16 + 16u * 32 + 32u * 16 + 16u);
}

/// Full-network gradient check across architectures (tanh keeps the loss
/// surface smooth for finite differences).
class MlpGradCheck
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(MlpGradCheck, AllParameterGradientsMatchNumeric) {
  const std::vector<std::size_t> dims = GetParam();
  util::Rng rng(11);
  Mlp net = Mlp::make(dims, rng, ActivationKind::kTanh);
  Matrix x(4, dims.front());
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  Matrix target(4, dims.back());
  for (auto& v : target.data()) v = rng.uniform(-1.0, 1.0);
  const MseLoss loss;

  auto loss_fn = [&] { return loss.value(net.forward(x, true), target); };
  net.zero_grad();
  const Matrix pred = net.forward(x, true);
  net.backward(loss.grad(pred, target));

  const auto params = net.params();
  const auto grads = net.grads();
  for (std::size_t p = 0; p < params.size(); ++p) {
    const GradCheckResult result =
        check_gradient(*params[p], *grads[p], loss_fn, 1e-6);
    EXPECT_TRUE(result.passed(1e-4))
        << "param " << p << " rel diff " << result.max_rel_diff;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, MlpGradCheck,
    ::testing::Values(std::vector<std::size_t>{2, 4, 1},
                      std::vector<std::size_t>{3, 16, 32, 16, 1},
                      std::vector<std::size_t>{4, 8, 8, 2}));

TEST(MlpTraining, FitsSineFunction) {
  // End-to-end sanity: a small MLP + Adam must fit y = sin(3x) on [-1, 1].
  util::Rng rng(21);
  Mlp net = Mlp::make({1, 32, 32, 1}, rng, ActivationKind::kTanh);
  Adam opt(5e-3);
  opt.attach(net.params(), net.grads());
  const MseLoss loss;

  Matrix x(128, 1), y(128, 1);
  for (std::size_t i = 0; i < 128; ++i) {
    x(i, 0) = -1.0 + 2.0 * static_cast<double>(i) / 127.0;
    y(i, 0) = std::sin(3.0 * x(i, 0));
  }
  double final_loss = 1.0;
  for (int epoch = 0; epoch < 800; ++epoch) {
    opt.zero_grad();
    const Matrix pred = net.forward(x, true);
    final_loss = loss.value(pred, y);
    net.backward(loss.grad(pred, y));
    opt.step();
  }
  EXPECT_LT(final_loss, 1e-3);
}

}  // namespace
}  // namespace socpinn::nn

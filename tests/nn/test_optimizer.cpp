#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace socpinn::nn {
namespace {

/// Minimizes f(p) = 0.5 * sum((p - target)^2) with the given optimizer and
/// returns the final distance to the optimum.
template <typename Opt>
double minimize_quadratic(Opt& opt, int steps) {
  Matrix p(2, 2, std::vector<double>{5.0, -3.0, 2.0, 8.0});
  const Matrix target(2, 2, std::vector<double>{1.0, 1.0, 1.0, 1.0});
  Matrix g(2, 2);
  opt.attach({&p}, {&g});
  for (int i = 0; i < steps; ++i) {
    for (std::size_t k = 0; k < p.size(); ++k) {
      g.data()[k] = p.data()[k] - target.data()[k];
    }
    opt.step();
  }
  Matrix diff = p;
  diff -= target;
  return std::sqrt(diff.squared_norm());
}

TEST(Sgd, ConvergesOnQuadratic) {
  Sgd opt(0.1);
  EXPECT_LT(minimize_quadratic(opt, 200), 1e-6);
}

TEST(Sgd, MomentumConvergesFaster) {
  Sgd plain(0.05);
  Sgd momentum(0.05, 0.9);
  const double d_plain = minimize_quadratic(plain, 60);
  const double d_momentum = minimize_quadratic(momentum, 60);
  EXPECT_LT(d_momentum, d_plain);
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam opt(0.3);
  EXPECT_LT(minimize_quadratic(opt, 300), 1e-4);
}

TEST(Adam, WeightDecayShrinksParameters) {
  // With zero gradient, AdamW decay must pull weights toward zero.
  Adam opt(0.01, 0.9, 0.999, 1e-8, /*weight_decay=*/0.1);
  Matrix p(1, 1, std::vector<double>{1.0});
  Matrix g(1, 1);
  opt.attach({&p}, {&g});
  for (int i = 0; i < 100; ++i) opt.step();
  EXPECT_LT(std::fabs(p(0, 0)), 1.0);
  EXPECT_GT(p(0, 0), 0.0);
}

TEST(Optimizer, AttachValidatesPairs) {
  Sgd opt(0.1);
  Matrix p(2, 2), g_wrong(1, 2), g_ok(2, 2);
  EXPECT_THROW(opt.attach({&p}, {}), std::invalid_argument);
  EXPECT_THROW(opt.attach({&p}, {&g_wrong}), std::invalid_argument);
  EXPECT_THROW(opt.attach({nullptr}, {&g_ok}), std::invalid_argument);
  EXPECT_NO_THROW(opt.attach({&p}, {&g_ok}));
}

TEST(Optimizer, ZeroGradClearsAll) {
  Sgd opt(0.1);
  Matrix p(1, 2);
  Matrix g(1, 2, std::vector<double>{3.0, 4.0});
  opt.attach({&p}, {&g});
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(g(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 0.0);
}

TEST(Optimizer, RejectsBadHyperparameters) {
  EXPECT_THROW(Sgd(0.0), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 0.9, 0.999, 0.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 0.9, 0.999, 1e-8, -0.1), std::invalid_argument);
}

TEST(Optimizer, SetLearningRateValidates) {
  Sgd opt(0.1);
  opt.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
  EXPECT_THROW(opt.set_learning_rate(0.0), std::invalid_argument);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Matrix g(1, 2, std::vector<double>{3.0, 4.0});  // norm 5
  const double norm = clip_grad_norm({&g}, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(std::sqrt(g.squared_norm()), 1.0, 1e-12);
  EXPECT_NEAR(g(0, 0) / g(0, 1), 0.75, 1e-12);  // direction preserved
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Matrix g(1, 2, std::vector<double>{0.3, 0.4});
  (void)clip_grad_norm({&g}, 1.0);
  EXPECT_DOUBLE_EQ(g(0, 0), 0.3);
  EXPECT_DOUBLE_EQ(g(0, 1), 0.4);
}

TEST(ClipGradNorm, GlobalNormAcrossTensors) {
  Matrix a(1, 1, std::vector<double>{3.0});
  Matrix b(1, 1, std::vector<double>{4.0});
  (void)clip_grad_norm({&a, &b}, 1.0);
  EXPECT_NEAR(a(0, 0) * a(0, 0) + b(0, 0) * b(0, 0), 1.0, 1e-12);
}

}  // namespace
}  // namespace socpinn::nn

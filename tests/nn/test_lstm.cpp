#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace socpinn::nn {
namespace {

std::vector<Matrix> random_sequence(std::size_t steps, std::size_t batch,
                                    std::size_t features, util::Rng& rng) {
  std::vector<Matrix> seq(steps, Matrix(batch, features));
  for (auto& step : seq) {
    for (auto& v : step.data()) v = rng.uniform(-1.0, 1.0);
  }
  return seq;
}

TEST(Lstm, OutputShapeAndDeterminism) {
  util::Rng rng(1);
  Lstm lstm(3, 8, rng);
  util::Rng data_rng(2);
  const auto seq = random_sequence(5, 4, 3, data_rng);
  const Matrix h1 = lstm.forward(seq);
  const Matrix h2 = lstm.forward(seq);
  EXPECT_EQ(h1.rows(), 4u);
  EXPECT_EQ(h1.cols(), 8u);
  EXPECT_TRUE(h1 == h2);
}

TEST(Lstm, HiddenStateIsBounded) {
  // h = o * tanh(c) with o in (0,1) => |h| < 1 always.
  util::Rng rng(3);
  Lstm lstm(2, 16, rng);
  util::Rng data_rng(4);
  auto seq = random_sequence(50, 2, 2, data_rng);
  for (auto& step : seq) step *= 10.0;  // extreme inputs
  const Matrix h = lstm.forward(seq);
  for (double v : h.data()) {
    EXPECT_LT(std::fabs(v), 1.0);
  }
}

TEST(Lstm, RejectsBadInputs) {
  util::Rng rng(1);
  EXPECT_THROW(Lstm(0, 4, rng), std::invalid_argument);
  Lstm lstm(3, 4, rng);
  EXPECT_THROW((void)lstm.forward({}), std::invalid_argument);
  std::vector<Matrix> ragged{Matrix(2, 3), Matrix(3, 3)};
  EXPECT_THROW((void)lstm.forward(ragged), std::invalid_argument);
  std::vector<Matrix> wrong_width{Matrix(2, 2)};
  EXPECT_THROW((void)lstm.forward(wrong_width), std::invalid_argument);
}

TEST(Lstm, BackwardBeforeForwardThrows) {
  util::Rng rng(1);
  Lstm lstm(3, 4, rng);
  EXPECT_THROW((void)lstm.backward(Matrix(2, 4)), std::logic_error);
}

TEST(Lstm, ForgetBiasInitializedToOne) {
  util::Rng rng(1);
  Lstm lstm(3, 4, rng);
  const Matrix& b = *lstm.params()[2];
  for (std::size_t c = 4; c < 8; ++c) {
    EXPECT_DOUBLE_EQ(b(0, c), 1.0);
  }
  EXPECT_DOUBLE_EQ(b(0, 0), 0.0);
}

/// BPTT gradcheck across sequence lengths — the critical correctness test
/// for the baseline implementations.
class LstmGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(LstmGradCheck, ParameterGradientsMatchNumeric) {
  const int steps = GetParam();
  util::Rng rng(100 + steps);
  Lstm lstm(2, 4, rng);
  util::Rng data_rng(200 + steps);
  const auto seq = random_sequence(steps, 3, 2, data_rng);
  Matrix target(3, 4);
  for (auto& v : target.data()) v = data_rng.uniform(-0.5, 0.5);
  const MseLoss loss;

  auto loss_fn = [&] { return loss.value(lstm.forward(seq), target); };
  lstm.zero_grad();
  const Matrix h = lstm.forward(seq);
  (void)lstm.backward(loss.grad(h, target));

  const auto params = lstm.params();
  const auto grads = lstm.grads();
  for (std::size_t p = 0; p < params.size(); ++p) {
    const GradCheckResult result =
        check_gradient(*params[p], *grads[p], loss_fn, 1e-6);
    EXPECT_TRUE(result.passed(1e-4))
        << "param " << p << " rel diff " << result.max_rel_diff;
  }
}

INSTANTIATE_TEST_SUITE_P(SequenceLengths, LstmGradCheck,
                         ::testing::Values(1, 3, 8));

TEST(Lstm, InputGradientsMatchNumeric) {
  util::Rng rng(7);
  Lstm lstm(2, 4, rng);
  util::Rng data_rng(8);
  auto seq = random_sequence(4, 2, 2, data_rng);
  Matrix target(2, 4);
  for (auto& v : target.data()) v = data_rng.uniform(-0.5, 0.5);
  const MseLoss loss;

  auto loss_fn = [&] { return loss.value(lstm.forward(seq), target); };
  lstm.zero_grad();
  const Matrix h = lstm.forward(seq);
  const std::vector<Matrix> dx = lstm.backward(loss.grad(h, target));
  ASSERT_EQ(dx.size(), seq.size());
  for (std::size_t s = 0; s < seq.size(); ++s) {
    const GradCheckResult result =
        check_gradient(seq[s], dx[s], loss_fn, 1e-6);
    EXPECT_TRUE(result.passed(1e-4))
        << "step " << s << " rel diff " << result.max_rel_diff;
  }
}

TEST(LstmRegressor, GradCheckThroughHead) {
  util::Rng rng(9);
  LstmRegressor model(2, 4, rng);
  util::Rng data_rng(10);
  const auto seq = random_sequence(3, 2, 2, data_rng);
  Matrix target(2, 1);
  for (auto& v : target.data()) v = data_rng.uniform(0.0, 1.0);
  const MseLoss loss;

  auto loss_fn = [&] { return loss.value(model.forward(seq), target); };
  model.zero_grad();
  const Matrix out = model.forward(seq);
  model.backward(loss.grad(out, target));

  const auto params = model.params();
  const auto grads = model.grads();
  ASSERT_EQ(params.size(), 5u);  // wx, wh, b, head W, head b
  for (std::size_t p = 0; p < params.size(); ++p) {
    const GradCheckResult result =
        check_gradient(*params[p], *grads[p], loss_fn, 1e-6);
    EXPECT_TRUE(result.passed(1e-4))
        << "param " << p << " rel diff " << result.max_rel_diff;
  }
}

TEST(LstmRegressor, LearnsRunningMean) {
  // Supervised toy task: output the mean of the inputs over the sequence.
  util::Rng rng(11);
  LstmRegressor model(1, 8, rng);
  Adam opt(1e-2);
  opt.attach(model.params(), model.grads());
  const MseLoss loss;
  util::Rng data_rng(12);

  double final_loss = 1.0;
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<Matrix> seq(6, Matrix(8, 1));
    Matrix target(8, 1);
    for (std::size_t b = 0; b < 8; ++b) {
      double acc = 0.0;
      for (auto& step : seq) {
        step(b, 0) = data_rng.uniform(-1.0, 1.0);
        acc += step(b, 0);
      }
      target(b, 0) = acc / 6.0;
    }
    model.zero_grad();
    const Matrix out = model.forward(seq);
    final_loss = loss.value(out, target);
    model.backward(loss.grad(out, target));
    opt.step();
  }
  EXPECT_LT(final_loss, 0.01);
}

}  // namespace
}  // namespace socpinn::nn

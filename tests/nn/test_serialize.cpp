#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace socpinn::nn {
namespace {

TEST(SerializeMlp, RoundTripPreservesPredictions) {
  util::Rng rng(9);
  Mlp net = Mlp::make({3, 16, 32, 16, 1}, rng);
  std::stringstream stream;
  save_mlp(stream, net);
  Mlp loaded = load_mlp(stream);

  util::Rng probe_rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    double features[3];
    for (double& f : features) f = probe_rng.uniform(-2.0, 2.0);
    EXPECT_DOUBLE_EQ(loaded.predict_scalar(features),
                     net.predict_scalar(features));
  }
}

TEST(SerializeMlp, RoundTripPreservesStructure) {
  util::Rng rng(11);
  Mlp net = Mlp::make({4, 8, 2}, rng, ActivationKind::kTanh);
  std::stringstream stream;
  save_mlp(stream, net);
  Mlp loaded = load_mlp(stream);
  EXPECT_EQ(loaded.num_layers(), net.num_layers());
  EXPECT_EQ(loaded.num_params(), net.num_params());
  EXPECT_EQ(loaded.describe(), net.describe());
}

TEST(SerializeMlp, RejectsGarbageInput) {
  std::stringstream stream("not-a-model 1");
  EXPECT_THROW((void)load_mlp(stream), std::runtime_error);
}

TEST(SerializeMlp, RejectsWrongVersion) {
  std::stringstream stream("socpinn-mlp 99\n0\n");
  EXPECT_THROW((void)load_mlp(stream), std::runtime_error);
}

TEST(SerializeMlp, RejectsTruncatedStream) {
  util::Rng rng(12);
  Mlp net = Mlp::make({2, 4, 1}, rng);
  std::stringstream stream;
  save_mlp(stream, net);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)load_mlp(truncated), std::runtime_error);
}

TEST(SerializeScaler, RoundTrips) {
  StandardScaler scaler =
      StandardScaler::from_moments({1.0, -2.5}, {0.1, 3.0});
  std::stringstream stream;
  save_scaler(stream, scaler);
  const StandardScaler loaded = load_scaler(stream);
  EXPECT_EQ(loaded.means(), scaler.means());
  EXPECT_EQ(loaded.stds(), scaler.stds());
}

TEST(SerializeScaler, RejectsUnfitted) {
  StandardScaler scaler;
  std::stringstream stream;
  EXPECT_THROW(save_scaler(stream, scaler), std::runtime_error);
}

TEST(SerializeScaler, RejectsBadHeader) {
  std::stringstream stream("wrong 1 2\n");
  EXPECT_THROW((void)load_scaler(stream), std::runtime_error);
}

TEST(SerializeMlp, FileRoundTrip) {
  util::Rng rng(13);
  Mlp net = Mlp::make({2, 4, 1}, rng);
  const std::string path = ::testing::TempDir() + "socpinn_mlp_test.txt";
  save_mlp_file(path, net);
  Mlp loaded = load_mlp_file(path);
  double features[2] = {0.5, -0.5};
  EXPECT_DOUBLE_EQ(loaded.predict_scalar(features),
                   net.predict_scalar(features));
  std::remove(path.c_str());
}

TEST(SerializeMlp, FileErrorsThrow) {
  util::Rng rng(1);
  Mlp net = Mlp::make({2, 2}, rng);
  EXPECT_THROW(save_mlp_file("/nonexistent/dir/model.txt", net),
               std::runtime_error);
  EXPECT_THROW((void)load_mlp_file("/nonexistent/model.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace socpinn::nn

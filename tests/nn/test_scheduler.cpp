#include "nn/scheduler.hpp"

#include <gtest/gtest.h>

namespace socpinn::nn {
namespace {

TEST(ConstantLr, NeverChanges) {
  const ConstantLr sched(1e-3);
  EXPECT_DOUBLE_EQ(sched.rate_at(0), 1e-3);
  EXPECT_DOUBLE_EQ(sched.rate_at(1000), 1e-3);
}

TEST(StepLr, DecaysEveryPeriod) {
  const StepLr sched(1.0, 10, 0.5);
  EXPECT_DOUBLE_EQ(sched.rate_at(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(9), 1.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(10), 0.5);
  EXPECT_DOUBLE_EQ(sched.rate_at(25), 0.25);
}

TEST(CosineLr, EndpointsAndMonotonicity) {
  const CosineLr sched(1e-2, 1e-4, 100);
  EXPECT_DOUBLE_EQ(sched.rate_at(0), 1e-2);
  EXPECT_NEAR(sched.rate_at(100), 1e-4, 1e-12);
  EXPECT_NEAR(sched.rate_at(200), 1e-4, 1e-12);  // clamped past the end
  double prev = sched.rate_at(0);
  for (std::size_t e = 1; e <= 100; ++e) {
    const double rate = sched.rate_at(e);
    EXPECT_LE(rate, prev + 1e-15);
    prev = rate;
  }
}

TEST(CosineLr, MidpointIsHalfway) {
  const CosineLr sched(1.0, 0.0 + 1e-9, 100);
  EXPECT_NEAR(sched.rate_at(50), 0.5, 1e-6);
}

TEST(Scheduler, AppliesToOptimizer) {
  Sgd opt(1.0);
  const StepLr sched(1.0, 5, 0.1);
  sched.apply(opt, 7);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.1);
}

TEST(Scheduler, ConstructorsValidate) {
  EXPECT_THROW(ConstantLr(0.0), std::invalid_argument);
  EXPECT_THROW(StepLr(1.0, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(StepLr(1.0, 5, 1.5), std::invalid_argument);
  EXPECT_THROW(CosineLr(1.0, 2.0, 10), std::invalid_argument);
  EXPECT_THROW(CosineLr(1.0, 0.1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace socpinn::nn

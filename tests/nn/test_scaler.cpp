#include "nn/scaler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace socpinn::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.normal(3.0, 2.0);
  return m;
}

TEST(StandardScaler, TransformedColumnsAreStandardized) {
  util::Rng rng(5);
  const Matrix x = random_matrix(500, 3, rng);
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < z.rows(); ++r) mean += z(r, c);
    mean /= static_cast<double>(z.rows());
    for (std::size_t r = 0; r < z.rows(); ++r) {
      var += (z(r, c) - mean) * (z(r, c) - mean);
    }
    var /= static_cast<double>(z.rows());
    EXPECT_NEAR(mean, 0.0, 1e-10);
    EXPECT_NEAR(var, 1.0, 1e-10);
  }
}

TEST(StandardScaler, InverseTransformRoundTrips) {
  util::Rng rng(6);
  const Matrix x = random_matrix(50, 4, rng);
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  const Matrix back = scaler.inverse_transform(z);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back.data()[i], x.data()[i], 1e-10);
  }
}

TEST(StandardScaler, TransformRowMatchesBatch) {
  util::Rng rng(7);
  const Matrix x = random_matrix(20, 3, rng);
  StandardScaler scaler;
  scaler.fit(x);
  const Matrix z = scaler.transform(x);
  double row[3] = {x(4, 0), x(4, 1), x(4, 2)};
  scaler.transform_row(row);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(row[c], z(4, c));
  }
}

TEST(StandardScaler, ConstantColumnScalesByMagnitude) {
  // A constant horizon column (e.g. N = 120 s everywhere) must divide by
  // its magnitude so unseen horizons map to O(1) deviations — this is what
  // keeps the No-PINN model from exploding at test horizons.
  Matrix x(10, 1, 120.0);
  StandardScaler scaler;
  scaler.fit(x);
  EXPECT_DOUBLE_EQ(scaler.stds()[0], 120.0);
  Matrix probe(1, 1, 240.0);
  EXPECT_DOUBLE_EQ(scaler.transform(probe)(0, 0), 1.0);
}

TEST(StandardScaler, ConstantZeroColumnUsesUnitScale) {
  Matrix x(10, 1, 0.0);
  StandardScaler scaler;
  scaler.fit(x);
  EXPECT_DOUBLE_EQ(scaler.stds()[0], 1.0);
}

TEST(StandardScaler, NearConstantColumnTriggersFallback) {
  // The fallback branch keys on std < 1e-12, not on exact equality: a
  // column whose jitter is below that threshold must also take the
  // magnitude fallback instead of dividing by a denormal-scale std.
  Matrix x(4, 1);
  x(0, 0) = 50.0;
  x(1, 0) = 50.0 + 1e-14;
  x(2, 0) = 50.0;
  x(3, 0) = 50.0 - 1e-14;
  StandardScaler scaler;
  scaler.fit(x);
  EXPECT_DOUBLE_EQ(scaler.stds()[0], 50.0);
}

TEST(StandardScaler, NegativeConstantColumnScalesByMagnitude) {
  // |mean| matters, not mean: a constant negative column (e.g. a fixed
  // discharge current) scales by its magnitude.
  Matrix x(8, 1, -120.0);
  StandardScaler scaler;
  scaler.fit(x);
  EXPECT_DOUBLE_EQ(scaler.stds()[0], 120.0);
  Matrix probe(1, 1, 0.0);
  EXPECT_DOUBLE_EQ(scaler.transform(probe)(0, 0), 1.0);
}

TEST(StandardScaler, SubUnitConstantColumnUsesUnitScale) {
  // Constant columns with magnitude below 1 use the unit floor, so tiny
  // constants do not blow up standardized deviations.
  Matrix x(6, 1, 0.25);
  StandardScaler scaler;
  scaler.fit(x);
  EXPECT_DOUBLE_EQ(scaler.stds()[0], 1.0);
  // All transform layouts route through the same fallback moments.
  Matrix rowm(1, 1, 1.25);
  Matrix out;
  scaler.transform_into(rowm, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 1.0);
  Matrix cols(1, 1, 1.25);
  scaler.transform_columns_into(cols, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 1.0);
}

TEST(StandardScaler, UnfittedThrows) {
  const StandardScaler scaler;
  EXPECT_FALSE(scaler.fitted());
  EXPECT_THROW((void)scaler.transform(Matrix(1, 1)), std::logic_error);
  EXPECT_THROW((void)scaler.inverse_transform(Matrix(1, 1)),
               std::logic_error);
}

TEST(StandardScaler, WidthMismatchThrows) {
  StandardScaler scaler;
  scaler.fit(Matrix(5, 3, 1.0));
  EXPECT_THROW((void)scaler.transform(Matrix(5, 2)), std::invalid_argument);
}

TEST(StandardScaler, FromMomentsRebuilds) {
  const StandardScaler scaler =
      StandardScaler::from_moments({1.0, 2.0}, {0.5, 2.0});
  Matrix x(1, 2, std::vector<double>{2.0, 6.0});
  const Matrix z = scaler.transform(x);
  EXPECT_DOUBLE_EQ(z(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(z(0, 1), 2.0);
}

TEST(StandardScaler, FromMomentsValidates) {
  EXPECT_THROW((void)StandardScaler::from_moments({1.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)StandardScaler::from_moments({1.0}, {0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)StandardScaler::from_moments({}, {}),
               std::invalid_argument);
}

TEST(StandardScaler, FitRejectsEmpty) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.fit(Matrix()), std::invalid_argument);
}

}  // namespace
}  // namespace socpinn::nn

/// The contract of the scalar-templated panel layer (nn/panel.hpp):
///
///  * instantiated at double, every type reproduces the nn::Matrix
///    reference path BITWISE — dense_forward_columns<double> equals the
///    Matrix kernel, MlpSnapshotT<double> equals Mlp::infer_columns,
///    ScalerStatsT<double> equals StandardScaler::transform_columns_into —
///    which pins the template to the reference arithmetic;
///  * instantiated at float, results track the f64 path within float
///    round-off at every batch size (full tiles, the half-width float
///    tile, and the scalar remainder);
///  * moment conversion is a checked, one-way snapshot: f64 -> f32 is the
///    nearest-float image of the fitted stats, f64 -> f64 is lossless.

#include "nn/panel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/dropout.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"

namespace socpinn::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform(-2.0, 2.0);
  return m;
}

template <typename T>
MatrixT<T> to_panel(const Matrix& m) {
  MatrixT<T> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.data()[i] = static_cast<T>(m.data()[i]);
  }
  return out;
}

TEST(MatrixT, ResizeReusesCapacityAndKeepsShape) {
  MatrixT<float> m(4, 8, 1.0f);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 8u);
  EXPECT_EQ(m.size(), 32u);
  m.resize(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.fill(2.5f);
  for (const float v : m.data()) EXPECT_EQ(v, 2.5f);
  m(1, 2) = -1.0f;
  EXPECT_EQ(m(1, 2), -1.0f);
}

TEST(PanelKernel, DoubleInstantiationMatchesMatrixKernelBitwise) {
  util::Rng rng(11);
  // Shapes straddle every kernel path: full 32-wide tiles, the scalar
  // remainder, and out_f both multiple-of-4 and not.
  const std::size_t batches[] = {1, 5, 31, 32, 33, 64, 100, 256};
  const std::size_t shapes[][2] = {{3, 16}, {16, 32}, {32, 16}, {16, 1},
                                   {4, 7}};
  for (const auto& shape : shapes) {
    const Matrix w = random_matrix(shape[0], shape[1], rng);
    const Matrix b = random_matrix(1, shape[1], rng);
    for (const std::size_t batch : batches) {
      const Matrix a = random_matrix(shape[0], batch, rng);
      Matrix expected;
      dense_forward_columns(a, w, b, expected);

      const auto at = to_panel<double>(a);
      const auto wt = to_panel<double>(w);
      const auto bt = to_panel<double>(b);
      MatrixT<double> got;
      dense_forward_columns(at, wt, bt, got);
      ASSERT_EQ(got.rows(), expected.rows());
      ASSERT_EQ(got.cols(), expected.cols());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        // Bitwise: the template at double IS the f64 kernel.
        EXPECT_EQ(got.data()[i], expected.data()[i])
            << shape[0] << "x" << shape[1] << " batch " << batch;
      }
    }
  }
}

TEST(PanelKernel, FloatTracksDoubleWithinRoundoff) {
  util::Rng rng(13);
  const Matrix w = random_matrix(16, 32, rng);
  const Matrix b = random_matrix(1, 32, rng);
  // Batch sizes pick out the float-only paths too: 64-wide main tile,
  // 32-wide half tile (32..63), and the scalar remainder.
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{17}, std::size_t{32}, std::size_t{48},
        std::size_t{63}, std::size_t{64}, std::size_t{129}}) {
    const Matrix a = random_matrix(16, batch, rng);
    Matrix expected;
    dense_forward_columns(a, w, b, expected);

    const auto af = to_panel<float>(a);
    const auto wf = to_panel<float>(w);
    const auto bf = to_panel<float>(b);
    MatrixT<float> got;
    dense_forward_columns(af, wf, bf, got);
    ASSERT_EQ(got.rows(), expected.rows());
    ASSERT_EQ(got.cols(), expected.cols());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      // 16-term dot products of O(1) values: float round-off stays well
      // below 1e-4.
      EXPECT_NEAR(static_cast<double>(got.data()[i]), expected.data()[i],
                  1e-4)
          << "batch " << batch;
    }
  }
}

TEST(PanelKernel, ValidatesShapesAndAliasing) {
  MatrixT<float> a(3, 8), w(4, 2), b(1, 2), out;
  EXPECT_THROW(dense_forward_columns(a, w, b, out), std::invalid_argument);
  MatrixT<float> w_ok(3, 2), b_bad(1, 3);
  EXPECT_THROW(dense_forward_columns(a, w_ok, b_bad, out),
               std::invalid_argument);
  EXPECT_THROW(dense_forward_columns(a, w_ok, b, a), std::invalid_argument);
}

TEST(ScalerStats, DoubleConversionIsLossless) {
  StandardScaler scaler =
      StandardScaler::from_moments({3.7, -1.5, 25.0}, {0.3, 2.0, 8.0});
  const auto stats = ScalerStatsT<double>::from(scaler);
  ASSERT_EQ(stats.num_features(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(stats.means[c], scaler.means()[c]);
    EXPECT_EQ(stats.stds[c], scaler.stds()[c]);
  }
}

TEST(ScalerStats, FloatConversionRoundTripsThroughNearestFloat) {
  // The f32 snapshot of the stats must be exactly the nearest-float image
  // of the fitted f64 moments — converting once at load means there is no
  // other rounding step to hide behind.
  StandardScaler scaler = StandardScaler::from_moments(
      {0.1234567890123, -1.5e-3, 2.5e4}, {0.25, 7.7e-2, 1.8e3});
  const auto stats = ScalerStatsT<float>::from(scaler);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(stats.means[c], static_cast<float>(scaler.means()[c]));
    EXPECT_EQ(stats.stds[c], static_cast<float>(scaler.stds()[c]));
    // And the round-trip back to double is the float value exactly.
    EXPECT_EQ(static_cast<double>(stats.means[c]),
              static_cast<double>(static_cast<float>(scaler.means()[c])));
  }
}

TEST(ScalerStats, UnfittedScalerThrows) {
  const StandardScaler unfitted;
  EXPECT_THROW((void)ScalerStatsT<float>::from(unfitted), std::logic_error);
  EXPECT_THROW((void)ScalerStatsT<double>::from(unfitted), std::logic_error);
}

TEST(ScalerStats, TransformColumnsMatchesScalerAtDouble) {
  util::Rng rng(17);
  const Matrix fit_data = random_matrix(40, 4, rng);
  StandardScaler scaler;
  scaler.fit(fit_data);

  const Matrix x = random_matrix(4, 50, rng);  // feature-major panel
  Matrix expected;
  scaler.transform_columns_into(x, expected);

  const auto stats = ScalerStatsT<double>::from(scaler);
  const auto xt = to_panel<double>(x);
  MatrixT<double> got;
  stats.transform_columns_into(xt, got);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got.data()[i], expected.data()[i]);
  }

  MatrixT<double> wrong_rows(3, 50);
  EXPECT_THROW(stats.transform_columns_into(wrong_rows, got),
               std::invalid_argument);
}

TEST(ScalerStats, ConstantColumnFallbackSurvivesConversion) {
  // fit()'s constant-column branch (stds_[c] < 1e-12) replaces a degenerate
  // std with max(1, |mean|); the converted stats must inherit that
  // fallback, not the raw zero, so f32 serving of a constant feature (e.g.
  // a fixed horizon N) stays finite.
  Matrix x(10, 2);
  for (std::size_t r = 0; r < 10; ++r) {
    x(r, 0) = 120.0;   // constant, magnitude > 1 -> std 120
    x(r, 1) = -0.25;   // constant, magnitude < 1 -> std 1
  }
  StandardScaler scaler;
  scaler.fit(x);
  const auto stats = ScalerStatsT<float>::from(scaler);
  EXPECT_EQ(stats.stds[0], 120.0f);
  EXPECT_EQ(stats.stds[1], 1.0f);

  MatrixT<float> probe(2, 1);
  probe(0, 0) = 240.0f;
  probe(1, 0) = -0.25f;
  MatrixT<float> z;
  stats.transform_columns_into(probe, z);
  EXPECT_FLOAT_EQ(z(0, 0), 1.0f);  // (240 - 120) / 120
  EXPECT_FLOAT_EQ(z(1, 0), 0.0f);
}

TEST(MlpSnapshot, DoubleSnapshotMatchesMlpInferColumnsBitwise) {
  util::Rng rng(19);
  const Mlp mlp = [&] {
    util::Rng r(7);
    return Mlp::make({4, 16, 32, 16, 1}, r);
  }();
  const auto snapshot = MlpSnapshotT<double>::from(mlp);
  ASSERT_EQ(snapshot.num_layers(), mlp.num_layers());

  ForwardWorkspace ws;
  ForwardWorkspaceT<double> wst;
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{33}, std::size_t{64}, std::size_t{97}}) {
    const Matrix input = random_matrix(4, batch, rng);
    const Matrix& expected = mlp.infer_columns(input, ws);
    const auto it = to_panel<double>(input);
    const MatrixT<double>& got = snapshot.infer_columns(it, wst);
    ASSERT_EQ(got.rows(), expected.rows());
    ASSERT_EQ(got.cols(), expected.cols());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got.data()[i], expected.data()[i]) << "batch " << batch;
    }
  }
}

TEST(MlpSnapshot, FloatSnapshotTracksDoubleWithinTolerance) {
  util::Rng rng(23);
  const Mlp mlp = [&] {
    util::Rng r(7);
    return Mlp::make({4, 16, 32, 16, 1}, r);
  }();
  const auto snapshot = MlpSnapshotT<float>::from(mlp);

  ForwardWorkspace ws;
  ForwardWorkspaceT<float> wsf;
  const Matrix input = random_matrix(4, 80, rng);
  const Matrix& expected = mlp.infer_columns(input, ws);
  const auto inf = to_panel<float>(input);
  const MatrixT<float>& got = snapshot.infer_columns(inf, wsf);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(got.data()[i]), expected.data()[i],
                1e-4);
  }
}

TEST(MlpSnapshot, RejectsUnsupportedLayers) {
  util::Rng rng(29);
  Mlp mlp = Mlp::make({3, 8, 1}, rng);
  mlp.add(std::make_unique<Dropout>(0.5, rng.split()));
  EXPECT_THROW((void)MlpSnapshotT<float>::from(mlp), std::invalid_argument);
}

TEST(MlpSnapshot, ValidatesInputWidth) {
  util::Rng rng(31);
  const Mlp mlp = Mlp::make({3, 8, 1}, rng);
  const auto snapshot = MlpSnapshotT<float>::from(mlp);
  ForwardWorkspaceT<float> ws;
  MatrixT<float> wrong(4, 10, 0.1f);
  EXPECT_THROW((void)snapshot.infer_columns(wrong, ws),
               std::invalid_argument);
}

}  // namespace
}  // namespace socpinn::nn

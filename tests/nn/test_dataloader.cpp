#include "nn/dataloader.hpp"

#include <gtest/gtest.h>

#include <set>

namespace socpinn::nn {
namespace {

Matrix index_column(std::size_t n) {
  Matrix m(n, 1);
  for (std::size_t i = 0; i < n; ++i) m(i, 0) = static_cast<double>(i);
  return m;
}

TEST(DataLoader, BatchCountAndSizes) {
  DataLoader loader(index_column(10), index_column(10), 4, false,
                    util::Rng(1));
  EXPECT_EQ(loader.num_batches(), 3u);
  const auto batches = loader.epoch();
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].x.rows(), 4u);
  EXPECT_EQ(batches[1].x.rows(), 4u);
  EXPECT_EQ(batches[2].x.rows(), 2u);  // trailing partial batch
}

TEST(DataLoader, WithoutShuffleKeepsOrder) {
  DataLoader loader(index_column(6), index_column(6), 2, false, util::Rng(1));
  const auto batches = loader.epoch();
  EXPECT_DOUBLE_EQ(batches[0].x(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(batches[0].x(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(batches[2].x(1, 0), 5.0);
}

TEST(DataLoader, ShuffleCoversAllSamplesExactlyOnce) {
  DataLoader loader(index_column(100), index_column(100), 7, true,
                    util::Rng(3));
  const auto batches = loader.epoch();
  std::multiset<double> seen;
  for (const auto& batch : batches) {
    for (std::size_t r = 0; r < batch.x.rows(); ++r) {
      seen.insert(batch.x(r, 0));
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(seen.count(static_cast<double>(i)), 1u);
  }
}

TEST(DataLoader, ShuffleChangesOrderBetweenEpochs) {
  DataLoader loader(index_column(50), index_column(50), 50, true,
                    util::Rng(4));
  const auto e1 = loader.epoch();
  const auto e2 = loader.epoch();
  bool any_diff = false;
  for (std::size_t r = 0; r < 50; ++r) {
    if (e1[0].x(r, 0) != e2[0].x(r, 0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DataLoader, XandYStayAligned) {
  Matrix x = index_column(30);
  Matrix y = index_column(30);
  y *= 10.0;
  DataLoader loader(std::move(x), std::move(y), 8, true, util::Rng(5));
  for (const auto& batch : loader.epoch()) {
    for (std::size_t r = 0; r < batch.x.rows(); ++r) {
      EXPECT_DOUBLE_EQ(batch.y(r, 0), 10.0 * batch.x(r, 0));
    }
  }
}

TEST(DataLoader, ConstructionValidates) {
  EXPECT_THROW(DataLoader(index_column(3), index_column(4), 2, false,
                          util::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(DataLoader(index_column(3), index_column(3), 0, false,
                          util::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(
      DataLoader(Matrix(), Matrix(), 2, false, util::Rng(1)),
      std::invalid_argument);
}

}  // namespace
}  // namespace socpinn::nn

#include "nn/gradcheck.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/dropout.hpp"
#include "nn/loss.hpp"
#include "util/rng.hpp"

namespace socpinn::nn {
namespace {

TEST(GradCheck, AcceptsCorrectGradient) {
  // f(p) = sum(p^2) -> grad = 2p.
  Matrix p(2, 2, std::vector<double>{0.5, -1.0, 2.0, 0.1});
  Matrix analytic = p * 2.0;
  const auto result = check_gradient(
      p, analytic, [&] { return p.squared_norm(); }, 1e-6);
  EXPECT_TRUE(result.passed(1e-6));
  EXPECT_EQ(result.checked, 4u);
}

TEST(GradCheck, RejectsWrongGradient) {
  Matrix p(1, 2, std::vector<double>{1.0, 2.0});
  Matrix wrong(1, 2, std::vector<double>{0.0, 0.0});
  const auto result = check_gradient(
      p, wrong, [&] { return p.squared_norm(); }, 1e-6);
  EXPECT_FALSE(result.passed(1e-5));
}

TEST(GradCheck, RestoresParametersAfterProbing) {
  Matrix p(1, 3, std::vector<double>{1.0, 2.0, 3.0});
  const Matrix original = p;
  Matrix analytic = p * 2.0;
  (void)check_gradient(p, analytic, [&] { return p.squared_norm(); }, 1e-6);
  EXPECT_TRUE(p == original);
}

TEST(GradCheck, ValidatesArguments) {
  Matrix p(1, 2);
  Matrix g(2, 1);
  EXPECT_THROW(
      (void)check_gradient(p, g, [] { return 0.0; }, 1e-6),
      std::invalid_argument);
  Matrix g2(1, 2);
  EXPECT_THROW(
      (void)check_gradient(p, g2, [] { return 0.0; }, 0.0),
      std::invalid_argument);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout layer(0.5, util::Rng(1));
  const Matrix x(4, 4, 2.0);
  EXPECT_TRUE(layer.forward(x, /*train=*/false) == x);
}

TEST(Dropout, TrainingZeroesApproximatelyRateFraction) {
  Dropout layer(0.3, util::Rng(2));
  const Matrix x(100, 100, 1.0);
  const Matrix y = layer.forward(x, /*train=*/true);
  std::size_t zeros = 0;
  for (double v : y.data()) {
    if (v == 0.0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.02);
}

TEST(Dropout, SurvivorsAreScaledToPreserveExpectation) {
  Dropout layer(0.25, util::Rng(3));
  const Matrix x(50, 50, 1.0);
  const Matrix y = layer.forward(x, /*train=*/true);
  for (double v : y.data()) {
    EXPECT_TRUE(v == 0.0 || std::fabs(v - 1.0 / 0.75) < 1e-12);
  }
  EXPECT_NEAR(y.sum() / 2500.0, 1.0, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout layer(0.5, util::Rng(4));
  const Matrix x(10, 10, 1.0);
  const Matrix y = layer.forward(x, /*train=*/true);
  const Matrix g = layer.backward(Matrix(10, 10, 1.0));
  // Gradient passes exactly where the forward did.
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(g.data()[i], y.data()[i]);
  }
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(-0.1, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0, util::Rng(1)), std::invalid_argument);
}

TEST(Dropout, ZeroRateIsIdentityEvenInTraining) {
  Dropout layer(0.0, util::Rng(5));
  const Matrix x(3, 3, 7.0);
  EXPECT_TRUE(layer.forward(x, /*train=*/true) == x);
}

}  // namespace
}  // namespace socpinn::nn

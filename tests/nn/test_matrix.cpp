#include "nn/matrix.hpp"

#include <gtest/gtest.h>

namespace socpinn::nn {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (double v : m.data()) EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(Matrix, FromDataValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, std::vector<double>{1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, std::vector<double>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Matrix, RowMajorIndexing) {
  Matrix m(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 2), 3);
  EXPECT_DOUBLE_EQ(m(1, 0), 4);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, RowVectorFactories) {
  const std::vector<double> vals{1, 2, 3};
  const Matrix r = Matrix::row_vector(vals);
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  const Matrix c = Matrix::column_vector(vals);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
}

TEST(Matrix, SetRowAndRowView) {
  Matrix m(2, 3);
  const std::vector<double> row{7, 8, 9};
  m.set_row(1, row);
  EXPECT_DOUBLE_EQ(m(1, 1), 8);
  auto view = m.row(1);
  EXPECT_DOUBLE_EQ(view[2], 9);
  EXPECT_THROW(m.set_row(0, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, MatmulKnownResult) {
  const Matrix a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, std::vector<double>{7, 8, 9, 10, 11, 12});
  const Matrix c = matmul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Matrix, MatmulRejectsMismatch) {
  EXPECT_THROW((void)matmul(Matrix(2, 3), Matrix(2, 3)),
               std::invalid_argument);
}

TEST(Matrix, TransposeVariantsAgree) {
  const Matrix a(3, 2, std::vector<double>{1, 2, 3, 4, 5, 6});
  const Matrix b(3, 4, std::vector<double>{1, 0, 2, 1, 3, 1, 0, 2, 0, 1, 1, 0});
  const Matrix expected = matmul(transpose(a), b);
  const Matrix got = matmul_transpose_a(a, b);
  EXPECT_TRUE(expected == got);

  // matmul_transpose_b(x, y) == x * y^T: x is 2x3, y is 4x3 -> 2x4.
  const Matrix x = transpose(a);
  const Matrix y(4, 3,
                 std::vector<double>{1, 2, 0, 1, 3, 0, 1, 1, 2, 0, 1, 1});
  const Matrix expected2 = matmul(x, transpose(y));
  const Matrix got2 = matmul_transpose_b(x, y);
  EXPECT_TRUE(expected2 == got2);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(transpose(transpose(a)) == a);
}

TEST(Matrix, ElementwiseOps) {
  const Matrix a(1, 3, std::vector<double>{1, 2, 3});
  const Matrix b(1, 3, std::vector<double>{4, 5, 6});
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 1), 7);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 2), 3);
  const Matrix prod = hadamard(a, b);
  EXPECT_DOUBLE_EQ(prod(0, 0), 4);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(0, 2), 6);
  const Matrix scaled2 = 2.0 * a;
  EXPECT_TRUE(scaled == scaled2);
}

TEST(Matrix, ElementwiseOpsRejectMismatch) {
  Matrix a(1, 2);
  const Matrix b(2, 1);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW((void)hadamard(a, b), std::invalid_argument);
}

TEST(Matrix, BroadcastBiasAndSumRows) {
  Matrix m(2, 2, std::vector<double>{1, 2, 3, 4});
  const Matrix bias(1, 2, std::vector<double>{10, 20});
  add_row_broadcast(m, bias);
  EXPECT_DOUBLE_EQ(m(0, 0), 11);
  EXPECT_DOUBLE_EQ(m(1, 1), 24);

  const Matrix sums = sum_rows(m);
  ASSERT_EQ(sums.rows(), 1u);
  EXPECT_DOUBLE_EQ(sums(0, 0), 11 + 13);
  EXPECT_DOUBLE_EQ(sums(0, 1), 22 + 24);
}

TEST(Matrix, BroadcastRejectsBadBias) {
  Matrix m(2, 2);
  EXPECT_THROW(add_row_broadcast(m, Matrix(1, 3)), std::invalid_argument);
  EXPECT_THROW(add_row_broadcast(m, Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, NormsAndSums) {
  const Matrix m(1, 3, std::vector<double>{3, 4, 0});
  EXPECT_DOUBLE_EQ(m.squared_norm(), 25.0);
  EXPECT_DOUBLE_EQ(m.sum(), 7.0);
}

TEST(Matrix, ApplyTransformsEveryElement) {
  Matrix m(2, 2, std::vector<double>{1, -2, 3, -4});
  m.apply([](double x) { return x < 0 ? 0.0 : x; });
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

}  // namespace
}  // namespace socpinn::nn

#include "nn/activation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "util/rng.hpp"

namespace socpinn::nn {
namespace {

TEST(Activation, ReluValues) {
  Activation relu(ActivationKind::kRelu);
  const Matrix x(1, 4, std::vector<double>{-2.0, -0.5, 0.0, 3.0});
  const Matrix y = relu.forward(x, false);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 3), 3.0);
}

TEST(Activation, LeakyReluKeepsSmallNegativeSlope) {
  Activation leaky(ActivationKind::kLeakyRelu);
  const Matrix x(1, 2, std::vector<double>{-1.0, 2.0});
  const Matrix y = leaky.forward(x, false);
  EXPECT_DOUBLE_EQ(y(0, 0), -0.01);
  EXPECT_DOUBLE_EQ(y(0, 1), 2.0);
}

TEST(Activation, TanhAndSigmoidValues) {
  Activation tanh_layer(ActivationKind::kTanh);
  Activation sigmoid(ActivationKind::kSigmoid);
  const Matrix x(1, 1, std::vector<double>{0.7});
  EXPECT_NEAR(tanh_layer.forward(x, false)(0, 0), std::tanh(0.7), 1e-15);
  EXPECT_NEAR(sigmoid.forward(x, false)(0, 0), 1.0 / (1.0 + std::exp(-0.7)),
              1e-15);
}

TEST(Activation, IdentityPassesThrough) {
  Activation id(ActivationKind::kIdentity);
  const Matrix x(2, 2, std::vector<double>{1, 2, 3, 4});
  EXPECT_TRUE(id.forward(x, false) == x);
}

TEST(Activation, BackwardRejectsShapeMismatch) {
  Activation relu(ActivationKind::kRelu);
  (void)relu.forward(Matrix(2, 2), true);
  EXPECT_THROW((void)relu.backward(Matrix(1, 2)), std::invalid_argument);
}

TEST(Activation, NameRoundTrip) {
  for (ActivationKind kind :
       {ActivationKind::kRelu, ActivationKind::kLeakyRelu,
        ActivationKind::kTanh, ActivationKind::kSigmoid,
        ActivationKind::kIdentity}) {
    EXPECT_EQ(activation_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)activation_from_string("swish"), std::invalid_argument);
}

class ActivationGradCheck
    : public ::testing::TestWithParam<ActivationKind> {};

TEST_P(ActivationGradCheck, InputGradientMatchesNumeric) {
  const ActivationKind kind = GetParam();
  util::Rng rng(7);
  Activation layer(kind);
  Matrix x(3, 5);
  for (auto& v : x.data()) {
    v = rng.uniform(-2.0, 2.0);
    // Keep samples away from the ReLU kink where the numeric gradient is
    // ill-defined.
    if (std::fabs(v) < 0.05) v = 0.1;
  }
  Matrix target(3, 5);
  for (auto& v : target.data()) v = rng.uniform(-1.0, 1.0);
  const MseLoss loss;

  auto loss_fn = [&] { return loss.value(layer.forward(x, true), target); };
  const Matrix pred = layer.forward(x, true);
  const Matrix dx = layer.backward(loss.grad(pred, target));
  const GradCheckResult result = check_gradient(x, dx, loss_fn, 1e-6);
  EXPECT_TRUE(result.passed(1e-5)) << "rel diff " << result.max_rel_diff;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ActivationGradCheck,
                         ::testing::Values(ActivationKind::kRelu,
                                           ActivationKind::kLeakyRelu,
                                           ActivationKind::kTanh,
                                           ActivationKind::kSigmoid,
                                           ActivationKind::kIdentity));

}  // namespace
}  // namespace socpinn::nn

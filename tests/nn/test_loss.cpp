#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace socpinn::nn {
namespace {

TEST(MaeLoss, ValueIsMeanAbsolute) {
  const MaeLoss loss;
  const Matrix pred(2, 1, std::vector<double>{1.0, 3.0});
  const Matrix target(2, 1, std::vector<double>{0.0, 5.0});
  EXPECT_DOUBLE_EQ(loss.value(pred, target), (1.0 + 2.0) / 2.0);
}

TEST(MaeLoss, GradientIsScaledSign) {
  const MaeLoss loss;
  const Matrix pred(2, 1, std::vector<double>{1.0, 3.0});
  const Matrix target(2, 1, std::vector<double>{0.0, 5.0});
  const Matrix g = loss.grad(pred, target);
  EXPECT_DOUBLE_EQ(g(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(g(1, 0), -0.5);
}

TEST(MaeLoss, SubgradientZeroAtExactMatch) {
  const MaeLoss loss;
  const Matrix pred(1, 1, std::vector<double>{2.0});
  EXPECT_DOUBLE_EQ(loss.grad(pred, pred)(0, 0), 0.0);
}

TEST(MseLoss, ValueAndGradient) {
  const MseLoss loss;
  const Matrix pred(2, 1, std::vector<double>{1.0, 3.0});
  const Matrix target(2, 1, std::vector<double>{0.0, 5.0});
  EXPECT_DOUBLE_EQ(loss.value(pred, target), (1.0 + 4.0) / 2.0);
  const Matrix g = loss.grad(pred, target);
  EXPECT_DOUBLE_EQ(g(0, 0), 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 2.0 * -2.0 / 2.0);
}

TEST(HuberLoss, QuadraticInsideLinearOutside) {
  const HuberLoss loss(1.0);
  const Matrix pred(2, 1, std::vector<double>{0.5, 3.0});
  const Matrix target(2, 1, std::vector<double>{0.0, 0.0});
  // Inside: 0.5*0.25; outside: 1*(3-0.5).
  EXPECT_DOUBLE_EQ(loss.value(pred, target), (0.125 + 2.5) / 2.0);
  const Matrix g = loss.grad(pred, target);
  EXPECT_DOUBLE_EQ(g(0, 0), 0.25);  // r/n
  EXPECT_DOUBLE_EQ(g(1, 0), 0.5);   // delta*sign/n
}

TEST(HuberLoss, RejectsNonPositiveDelta) {
  EXPECT_THROW(HuberLoss(0.0), std::invalid_argument);
  EXPECT_THROW(HuberLoss(-1.0), std::invalid_argument);
}

TEST(Loss, ShapeMismatchThrows) {
  const MaeLoss loss;
  EXPECT_THROW((void)loss.value(Matrix(2, 1), Matrix(1, 2)),
               std::invalid_argument);
  EXPECT_THROW((void)loss.grad(Matrix(2, 1), Matrix(2, 2)),
               std::invalid_argument);
}

TEST(Loss, EmptyBatchThrows) {
  const MseLoss loss;
  EXPECT_THROW((void)loss.value(Matrix(), Matrix()), std::invalid_argument);
}

TEST(Loss, FactoryByName) {
  EXPECT_EQ(make_loss("mae")->name(), "mae");
  EXPECT_EQ(make_loss("mse")->name(), "mse");
  EXPECT_EQ(make_loss("huber")->name(), "huber");
  EXPECT_THROW((void)make_loss("hinge"), std::invalid_argument);
}

/// The MAE gradient must be a valid subgradient: moving against it cannot
/// increase the loss for small steps (checked across random instances).
TEST(MaeLoss, GradientDescentDirectionDecreasesLoss) {
  const MaeLoss loss;
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix pred(4, 2), target(4, 2);
    for (auto& v : pred.data()) v = rng.uniform(-1.0, 1.0);
    for (auto& v : target.data()) v = rng.uniform(-1.0, 1.0);
    const double before = loss.value(pred, target);
    Matrix stepped = pred;
    stepped -= loss.grad(pred, target) * 1e-3;
    EXPECT_LE(loss.value(stepped, target), before + 1e-12);
  }
}

}  // namespace
}  // namespace socpinn::nn

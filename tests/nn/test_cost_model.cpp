#include "nn/cost_model.hpp"

#include <gtest/gtest.h>

#include "nn/lstm.hpp"
#include "util/rng.hpp"

namespace socpinn::nn {
namespace {

TEST(CostModel, PaperBranchCost) {
  util::Rng rng(1);
  // One branch of the paper's network: ~1,150 MACs per inference and the
  // two branches together store ~9 kB at float32.
  Mlp branch1 = Mlp::make({3, 16, 32, 16, 1}, rng);
  Mlp branch2 = Mlp::make({4, 16, 32, 16, 1}, rng);
  const ModelCost c1 = mlp_cost(branch1);
  const ModelCost c2 = mlp_cost(branch2);
  EXPECT_EQ(c1.macs, 3u * 16 + 16u * 32 + 32u * 16 + 16u);  // 1104
  EXPECT_EQ(c2.macs, 4u * 16 + 16u * 32 + 32u * 16 + 16u);  // 1120
  EXPECT_NEAR(static_cast<double>(c1.macs), 1150.0, 70.0);
  EXPECT_EQ(c1.params + c2.params, 2322u);
  EXPECT_NEAR(static_cast<double>(c1.bytes_f32 + c2.bytes_f32),
              9.0 * 1024.0, 300.0);
}

TEST(CostModel, LstmParamFormula) {
  // 4 gates of (in*h + h*h + h) plus the scalar head (h + 1).
  EXPECT_EQ(lstm_param_count(3, 10),
            4u * (3 * 10 + 10 * 10 + 10) + 10 + 1);
}

TEST(CostModel, LstmMacFormula) {
  EXPECT_EQ(lstm_mac_count(3, 10, 5), 4u * 10 * (3 + 10) * 5 + 10);
}

TEST(CostModel, PublishedLstmScaleMatchesPaper) {
  // The LSTM of [17] is reported at ~4 Mb and ~300 M operations. With a
  // 512-unit hidden layer the parameter storage lands in the megabyte
  // class, 3 orders of magnitude above the two-branch model.
  const ModelCost lstm = lstm_cost(3, 512, 100);
  EXPECT_GT(lstm.bytes_f32, 3u * 1024 * 1024);
  EXPECT_GT(lstm.macs, 90'000'000u);

  util::Rng rng(1);
  Mlp branch = Mlp::make({3, 16, 32, 16, 1}, rng);
  const ModelCost ours = mlp_cost(branch);
  EXPECT_GT(lstm.bytes_f32 / ours.bytes_f32, 300u);
  EXPECT_GT(lstm.macs / ours.macs, 50'000u);
}

TEST(CostModel, CostStringsUseHumanUnits) {
  ModelCost cost;
  cost.bytes_f32 = 9 * 1024;
  cost.macs = 1150;
  EXPECT_EQ(cost.mem_str(), "9.0 kB");
  EXPECT_EQ(cost.ops_str(), "1.1 k");
}

TEST(CostModel, InstantiatedLstmMatchesFormulas) {
  util::Rng rng(2);
  LstmRegressor model(3, 8, rng);
  EXPECT_EQ(model.num_params(), lstm_param_count(3, 8));
  EXPECT_EQ(model.macs_per_sample(20), lstm_mac_count(3, 8, 20));
}

}  // namespace
}  // namespace socpinn::nn

#include "nn/dense.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"

namespace socpinn::nn {
namespace {

TEST(Dense, ShapesAndParamCount) {
  util::Rng rng(1);
  Dense layer(3, 16, rng);
  EXPECT_EQ(layer.input_dim(), 3u);
  EXPECT_EQ(layer.output_dim(), 16u);
  EXPECT_EQ(layer.num_params(), 3u * 16u + 16u);
  EXPECT_EQ(layer.macs_per_sample(), 48u);
}

TEST(Dense, RejectsZeroSizes) {
  util::Rng rng(1);
  EXPECT_THROW(Dense(0, 4, rng), std::invalid_argument);
  EXPECT_THROW(Dense(4, 0, rng), std::invalid_argument);
}

TEST(Dense, ForwardComputesAffineMap) {
  util::Rng rng(1);
  Dense layer(2, 2, rng);
  // Overwrite with known weights: y = [x0 + 2 x1, 3 x0 + 4 x1] + [0.5, -1].
  layer.weights() = Matrix(2, 2, std::vector<double>{1, 3, 2, 4});
  layer.bias() = Matrix(1, 2, std::vector<double>{0.5, -1.0});
  const Matrix x(1, 2, std::vector<double>{1.0, 2.0});
  const Matrix y = layer.forward(x, false);
  EXPECT_DOUBLE_EQ(y(0, 0), 1.0 + 4.0 + 0.5);
  EXPECT_DOUBLE_EQ(y(0, 1), 3.0 + 8.0 - 1.0);
}

TEST(Dense, ForwardRejectsWrongWidth) {
  util::Rng rng(1);
  Dense layer(3, 4, rng);
  EXPECT_THROW((void)layer.forward(Matrix(2, 2), false),
               std::invalid_argument);
}

TEST(Dense, BackwardRejectsWrongShape) {
  util::Rng rng(1);
  Dense layer(3, 4, rng);
  (void)layer.forward(Matrix(2, 3, 0.1), true);
  EXPECT_THROW((void)layer.backward(Matrix(2, 3)), std::invalid_argument);
  EXPECT_THROW((void)layer.backward(Matrix(3, 4)), std::invalid_argument);
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  util::Rng rng(2);
  Dense layer(2, 1, rng);
  const Matrix x(1, 2, std::vector<double>{1.0, 1.0});
  const Matrix g(1, 1, std::vector<double>{1.0});
  (void)layer.forward(x, true);
  (void)layer.backward(g);
  const double first = (*layer.grads()[0])(0, 0);
  (void)layer.forward(x, true);
  (void)layer.backward(g);
  EXPECT_DOUBLE_EQ((*layer.grads()[0])(0, 0), 2.0 * first);
  layer.zero_grad();
  EXPECT_DOUBLE_EQ((*layer.grads()[0])(0, 0), 0.0);
}

/// Parameterized gradcheck over several layer geometries and batch sizes.
class DenseGradCheck
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DenseGradCheck, AnalyticMatchesNumeric) {
  const auto [in, out, batch] = GetParam();
  util::Rng rng(42 + in * 100 + out * 10 + batch);
  Dense layer(in, out, rng);
  Matrix x(batch, in);
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  Matrix target(batch, out);
  for (auto& v : target.data()) v = rng.uniform(-1.0, 1.0);
  const MseLoss loss;  // smooth loss keeps finite differences well-behaved

  auto loss_fn = [&] {
    return loss.value(layer.forward(x, true), target);
  };

  layer.zero_grad();
  const Matrix pred = layer.forward(x, true);
  (void)layer.backward(loss.grad(pred, target));

  for (std::size_t p = 0; p < layer.params().size(); ++p) {
    const GradCheckResult result = check_gradient(
        *layer.params()[p], *layer.grads()[p], loss_fn, 1e-6);
    EXPECT_TRUE(result.passed(1e-5))
        << "param " << p << " rel diff " << result.max_rel_diff;
  }

  // Input gradient check via a fresh backward pass.
  layer.zero_grad();
  const Matrix pred2 = layer.forward(x, true);
  const Matrix dx = layer.backward(loss.grad(pred2, target));
  const GradCheckResult input_check = check_gradient(x, dx, loss_fn, 1e-6);
  EXPECT_TRUE(input_check.passed(1e-5))
      << "input rel diff " << input_check.max_rel_diff;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DenseGradCheck,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 16, 4},
                      std::tuple{16, 32, 8}, std::tuple{4, 1, 32},
                      std::tuple{7, 5, 3}));

}  // namespace
}  // namespace socpinn::nn

#include "nn/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace socpinn::nn {
namespace {

const std::vector<double> kPred{1.0, 2.0, 3.0};
const std::vector<double> kTruth{1.5, 2.0, 1.0};

TEST(Metrics, MaeKnownValue) {
  EXPECT_DOUBLE_EQ(mae(kPred, kTruth), (0.5 + 0.0 + 2.0) / 3.0);
}

TEST(Metrics, RmseKnownValue) {
  EXPECT_DOUBLE_EQ(rmse(kPred, kTruth),
                   std::sqrt((0.25 + 0.0 + 4.0) / 3.0));
}

TEST(Metrics, MaxAbsErrorKnownValue) {
  EXPECT_DOUBLE_EQ(max_abs_error(kPred, kTruth), 2.0);
}

TEST(Metrics, RmseAtLeastMae) {
  EXPECT_GE(rmse(kPred, kTruth), mae(kPred, kTruth));
}

TEST(Metrics, PerfectPredictionScoresPerfectly) {
  const std::vector<double> xs{0.1, 0.5, 0.9, 0.3};
  EXPECT_DOUBLE_EQ(mae(xs, xs), 0.0);
  EXPECT_DOUBLE_EQ(rmse(xs, xs), 0.0);
  EXPECT_DOUBLE_EQ(r_squared(xs, xs), 1.0);
}

TEST(Metrics, R2OfMeanPredictorIsZero) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> mean_pred{2.0, 2.0, 2.0};
  EXPECT_NEAR(r_squared(mean_pred, truth), 0.0, 1e-12);
}

TEST(Metrics, R2RejectsConstantTruth) {
  const std::vector<double> truth{2.0, 2.0};
  const std::vector<double> pred{1.0, 3.0};
  EXPECT_THROW((void)r_squared(pred, truth), std::invalid_argument);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)mae(a, b), std::invalid_argument);
  EXPECT_THROW((void)rmse(a, b), std::invalid_argument);
}

TEST(Metrics, EmptyThrows) {
  EXPECT_THROW((void)mae(std::vector<double>{}, std::vector<double>{}),
               std::invalid_argument);
}

TEST(Metrics, MatrixOverloadsFlatten) {
  const Matrix pred(3, 1, kPred);
  const Matrix truth(3, 1, kTruth);
  EXPECT_DOUBLE_EQ(mae(pred, truth), mae(kPred, kTruth));
  EXPECT_DOUBLE_EQ(rmse(pred, truth), rmse(kPred, kTruth));
}

TEST(Metrics, EvaluateBundlesEverything) {
  const RegressionReport report = evaluate(kPred, kTruth);
  EXPECT_DOUBLE_EQ(report.mae, mae(kPred, kTruth));
  EXPECT_DOUBLE_EQ(report.rmse, rmse(kPred, kTruth));
  EXPECT_DOUBLE_EQ(report.max_abs, 2.0);
  EXPECT_NE(report.str().find("mae="), std::string::npos);
}

}  // namespace
}  // namespace socpinn::nn

/// Pins the runtime-ISA panel dispatch (nn/panel_dispatch.hpp): the
/// resolution policy (detection order, SOCPINN_FORCE_ISA spelling, loud
/// failure on unknown/unsupported overrides), the parity contract — every
/// explicit SIMD kernel bitwise identical to the scalar reference at f64
/// and within 1 ulp at f32, across an exhaustive batch sweep covering every
/// tile/remainder decomposition — and the 64-byte alignment contract of the
/// panel carriers (nn/aligned.hpp).
///
/// These tests exercise every kernel the BINARY carries that the HOST can
/// execute, independent of which one SOCPINN_FORCE_ISA pins for the serve
/// path — so a forced-scalar CI job still sweeps the AVX2 kernels.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "nn/aligned.hpp"
#include "nn/matrix.hpp"
#include "nn/panel.hpp"
#include "nn/panel_dispatch.hpp"
#include "util/rng.hpp"

namespace socpinn::nn {
namespace {

using simd::Isa;

std::vector<Isa> all_isas() {
  std::vector<Isa> isas;
  for (int i = 0; i < simd::kNumIsas; ++i) isas.push_back(static_cast<Isa>(i));
  return isas;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> isas;
  for (Isa isa : all_isas()) {
    if (simd::isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

TEST(SimdDispatch, IsaNameParseRoundTrip) {
  for (Isa isa : all_isas()) {
    const char* name = simd::isa_name(isa);
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(simd::parse_isa(name), isa) << name;
  }
  EXPECT_THROW((void)simd::parse_isa("sse2"), std::invalid_argument);
  EXPECT_THROW((void)simd::parse_isa("AVX2"), std::invalid_argument)
      << "names are the exact SOCPINN_FORCE_ISA spelling, lowercase";
}

TEST(SimdDispatch, ScalarIsAlwaysCompiledAndSupported) {
  EXPECT_TRUE(simd::isa_compiled(Isa::kScalar));
  EXPECT_TRUE(simd::isa_supported(Isa::kScalar));
}

TEST(SimdDispatch, SupportedImpliesCompiled) {
  for (Isa isa : all_isas()) {
    if (simd::isa_supported(isa)) EXPECT_TRUE(simd::isa_compiled(isa));
  }
}

TEST(SimdDispatch, ActiveIsaIsSupported) {
  // Holds whatever SOCPINN_FORCE_ISA the ctest invocation pinned: a forced
  // ISA that resolved at all is by contract a supported one.
  EXPECT_TRUE(simd::isa_supported(simd::active_isa()));
}

TEST(SimdDispatch, ResolveIsaAutoPicksTheDetectionOrderWinner) {
  // nullptr and "" both mean auto-detect; the winner is the first supported
  // entry of the documented order AVX-512 > AVX2 > NEON > scalar.
  Isa best = Isa::kScalar;
  for (Isa candidate : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (simd::isa_supported(candidate)) {
      best = candidate;
      break;
    }
  }
  EXPECT_EQ(simd::resolve_isa(nullptr), best);
  EXPECT_EQ(simd::resolve_isa(""), best);
}

TEST(SimdDispatch, ResolveIsaHonorsForceAndThrowsLoudly) {
  EXPECT_EQ(simd::resolve_isa("scalar"), Isa::kScalar);
  for (Isa isa : all_isas()) {
    const char* name = simd::isa_name(isa);
    if (simd::isa_supported(isa)) {
      EXPECT_EQ(simd::resolve_isa(name), isa) << name;
    } else {
      // e.g. "neon" on x86, or "avx512" on an older CPU: forcing an ISA
      // this binary/host cannot run must throw, never silently fall back —
      // a forced-ISA CI job passing on the wrong kernel checks nothing.
      EXPECT_THROW((void)simd::resolve_isa(name), std::invalid_argument)
          << name;
    }
  }
  EXPECT_THROW((void)simd::resolve_isa("fastest"), std::invalid_argument);
}

TEST(SimdDispatch, PanelKernelsTableMatchesSupport) {
  for (Isa isa : all_isas()) {
    if (simd::isa_supported(isa)) {
      const simd::PanelKernels& k = simd::panel_kernels(isa);
      EXPECT_NE(k.f32, nullptr) << simd::isa_name(isa);
      EXPECT_NE(k.f64, nullptr) << simd::isa_name(isa);
    } else {
      EXPECT_THROW((void)simd::panel_kernels(isa), std::invalid_argument)
          << simd::isa_name(isa);
    }
  }
  EXPECT_EQ(simd::active_panel_kernels().f64,
            simd::panel_kernels(simd::active_isa()).f64);
}

/// ulp distance between two floats of the same sign regime; 0 for bitwise
/// equality. Large sentinel when signs differ (never expected here).
std::uint32_t ulp_diff(float a, float b) {
  std::int32_t ia = 0, ib = 0;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  if ((ia < 0) != (ib < 0)) {
    return a == b ? 0u : 0x7fffffffu;  // +0 vs -0 counts as equal
  }
  const std::int64_t d = static_cast<std::int64_t>(ia) - ib;
  return static_cast<std::uint32_t>(d < 0 ? -d : d);
}

/// The parity sweep: every supported ISA against the scalar reference over
/// batches 1..130 — crossing every tile boundary of every kernel (scalar
/// f64 tiles at 32 columns, f32 at 64/32; AVX-512 tiles at 32/64; AVX2 at
/// 8/16 per vector with 2-vector tiles; NEON at 2/4 with 4-vector tiles)
/// plus the single-vector pass and the scalar remainder, and out_f values
/// hitting the 4-row tile, its remainder rows, and out_f == 1.
TEST(SimdDispatch, ExhaustiveSweepMatchesScalarReference) {
  constexpr std::size_t kMaxBatch = 130;
  constexpr std::size_t kMaxInF = 16;
  constexpr std::size_t kMaxOutF = 32;
  const std::size_t in_fs[] = {3, 16};
  const std::size_t out_fs[] = {1, 7, 16, 32};

  const std::vector<Isa> isas = supported_isas();
  ASSERT_GE(isas.size(), 1u);
  const simd::PanelKernels& scalar = simd::panel_kernels(Isa::kScalar);

  util::Rng rng(99);
  AlignedVector<double> a64(kMaxInF * kMaxBatch), w64(kMaxInF * kMaxOutF),
      b64(kMaxOutF), ref64(kMaxOutF * kMaxBatch), out64(kMaxOutF * kMaxBatch);
  AlignedVector<float> a32(a64.size()), w32(w64.size()), b32(b64.size()),
      ref32(ref64.size()), out32(out64.size());

  for (const std::size_t in_f : in_fs) {
    for (const std::size_t out_f : out_fs) {
      for (std::size_t i = 0; i < in_f * out_f; ++i) {
        w64[i] = rng.uniform(-1.0, 1.0);
        w32[i] = static_cast<float>(w64[i]);
      }
      for (std::size_t i = 0; i < out_f; ++i) {
        b64[i] = rng.uniform(-1.0, 1.0);
        b32[i] = static_cast<float>(b64[i]);
      }
      for (std::size_t batch = 1; batch <= kMaxBatch; ++batch) {
        for (std::size_t i = 0; i < in_f * batch; ++i) {
          a64[i] = rng.uniform(-1.0, 1.0);
          a32[i] = static_cast<float>(a64[i]);
        }
        scalar.f64(a64.data(), w64.data(), b64.data(), ref64.data(), in_f,
                   out_f, batch);
        scalar.f32(a32.data(), w32.data(), b32.data(), ref32.data(), in_f,
                   out_f, batch);
        for (Isa isa : isas) {
          const simd::PanelKernels& k = simd::panel_kernels(isa);
          // Poison the outputs: an element the kernel forgot to write
          // (e.g. a broken remainder loop) must mismatch, not luckily
          // retain a stale correct value.
          for (std::size_t i = 0; i < out_f * batch; ++i) {
            out64[i] = -777.0;
            out32[i] = -777.0f;
          }
          k.f64(a64.data(), w64.data(), b64.data(), out64.data(), in_f,
                out_f, batch);
          ASSERT_EQ(std::memcmp(out64.data(), ref64.data(),
                                out_f * batch * sizeof(double)),
                    0)
              << "f64 not bitwise-identical to scalar: isa="
              << simd::isa_name(isa) << " in_f=" << in_f << " out_f=" << out_f
              << " batch=" << batch;
          k.f32(a32.data(), w32.data(), b32.data(), out32.data(), in_f,
                out_f, batch);
          for (std::size_t i = 0; i < out_f * batch; ++i) {
            ASSERT_LE(ulp_diff(out32[i], ref32[i]), 1u)
                << "f32 beyond 1 ulp of scalar: isa=" << simd::isa_name(isa)
                << " in_f=" << in_f << " out_f=" << out_f
                << " batch=" << batch << " elem=" << i << " got=" << out32[i]
                << " want=" << ref32[i];
          }
        }
      }
    }
  }
}

/// dense_forward_columns (both Matrix and MatrixT carriers) routes through
/// the dispatcher; whatever ISA is active, the result must equal the scalar
/// kernel bitwise at f64 — the carrier-level restatement of the sweep.
TEST(SimdDispatch, DenseForwardColumnsMatchesScalarKernel) {
  util::Rng rng(7);
  const std::size_t in_f = 4, out_f = 16, batch = 97;
  Matrix act(in_f, batch), w(in_f, out_f), bias(1, out_f), out;
  for (auto& v : act.data()) v = rng.uniform(-1.0, 1.0);
  for (auto& v : w.data()) v = rng.uniform(-1.0, 1.0);
  for (auto& v : bias.data()) v = rng.uniform(-1.0, 1.0);

  dense_forward_columns(act, w, bias, out);

  std::vector<double> ref(out_f * batch);
  simd::panel_kernels(Isa::kScalar)
      .f64(act.data().data(), w.data().data(), bias.data().data(), ref.data(),
           in_f, out_f, batch);
  ASSERT_EQ(out.rows(), out_f);
  ASSERT_EQ(out.cols(), batch);
  EXPECT_EQ(std::memcmp(out.data().data(), ref.data(),
                        ref.size() * sizeof(double)),
            0);
}

TEST(PanelAlignment, MatrixStorageIs64ByteAligned) {
  static_assert(kPanelAlignment == 64);
  for (const std::size_t cols : {1u, 3u, 17u, 64u, 130u, 1000u}) {
    Matrix m(4, cols);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data().data()) %
                  kPanelAlignment,
              0u)
        << cols;
    MatrixT<float> mf(4, cols);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mf.data().data()) %
                  kPanelAlignment,
              0u)
        << cols;
    MatrixT<double> md(4, cols);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(md.data().data()) %
                  kPanelAlignment,
              0u)
        << cols;
  }
}

TEST(PanelAlignment, ResizeAndWorkspaceBuffersStayAligned) {
  // Growth forces reallocation; the new block must come from the aligned
  // allocator again — this is what lets kernels assume the panel BASE is
  // 64-byte aligned forever (row starts still depend on batch).
  MatrixT<float> m;
  for (const std::size_t cols : {5u, 33u, 129u, 1024u}) {
    m.resize(16, cols);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data().data()) %
                  kPanelAlignment,
              0u)
        << cols;
  }
  ForwardWorkspaceT<double> ws;
  ws.buffer(2).resize(16, 130);
  for (std::size_t i = 0; i < ws.num_buffers(); ++i) {
    ws.buffer(i).resize(8, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ws.buffer(i).data().data()) %
                  kPanelAlignment,
              0u)
        << i;
  }
  AlignedVector<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(1.0);
    if ((i & (i - 1)) == 0) {  // around growth points
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kPanelAlignment,
                0u)
          << i;
    }
  }
}

}  // namespace
}  // namespace socpinn::nn

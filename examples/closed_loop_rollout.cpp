/// \file closed_loop_rollout.cpp
/// Open-loop drift vs periodic re-anchoring — the paper's Fig. 5 turned
/// into the closed-loop comparison it gestures at. Fig. 5 consumes
/// voltage exactly once, at the first timestamp: past that point the
/// cascade is an open-loop simulator and its error compounds per step.
/// But the paper's own pitch is an embedded BMS whose sensors keep
/// reporting — so what does each extra voltage reading buy?
///
///   1. train a PINN-30s on LG-like mixed cycles,
///   2. for every pure test cycle, build THREE lanes over the same
///      data::WorkloadSchedule: open-loop (Fig. 5 as published), and two
///      closed-loop lanes whose data::ReanchorPlan consumes the trace's
///      recorded (V, I, T) every ~20 min and every ~5 min (a BMS
///      reporting sparsely vs frequently),
///   3. roll ALL lanes in one serve::RolloutEngine pass (open-loop and
///      closed-loop lanes mix freely in one lockstep walk),
///   4. compare trajectory-mean and final |SoC error| per flavor.
///
/// Run: ./closed_loop_rollout [epochs]  (add --smoke for a tiny CI run)

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "data/lg.hpp"
#include "data/preprocess.hpp"
#include "example_support.hpp"
#include "serve/rollout_engine.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

using namespace socpinn;

namespace {

double mean_abs_error(const core::Rollout& r) {
  double acc = 0.0;
  for (std::size_t i = 0; i < r.soc.size(); ++i) {
    acc += std::fabs(r.soc[i] - r.truth[i]);
  }
  return acc / static_cast<double>(r.soc.size());
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  const bool smoke = examples::strip_smoke_flag(argc, argv);
  const std::size_t epochs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (smoke ? 8 : 200);
  if (epochs == 0) {
    std::fprintf(stderr,
                 "usage: closed_loop_rollout [epochs > 0] [--smoke]\n");
    return 1;
  }

  // 1. Train on the LG-like mixed cycles (1 s cadence, 30 s smoothing).
  data::LgConfig data_config;
  data_config.sample_period_s = 1.0;
  const data::LgDataset dataset = data::generate_lg(data_config);

  core::ExperimentSetup setup;
  for (const auto& run : dataset.train_runs) {
    setup.train_traces.push_back(data::smooth_trace(run.trace, 30.0));
  }
  setup.native_horizon_s = 30.0;
  setup.cell.capacity_ah =
      battery::cell_params(battery::Chemistry::kLgHg2).capacity_ah;
  setup.train.epochs = epochs;
  setup.branch1_stride = smoke ? 200 : 10;
  setup.branch2_stride = smoke ? 200 : 10;

  std::printf("training PINN-30s (%zu epochs) on %zu mixed cycles...\n",
              epochs, setup.train_traces.size());
  const core::TrainedModel model = core::train_two_branch(
      setup, {"PINN-30s", core::VariantKind::kPinn, {30.0}}, 1);

  // 2. Three lanes per test cycle over ONE schedule: open loop, sparse
  //    re-anchors (~20 min), frequent re-anchors (~5 min). The plans play
  //    back the trace's own recorded sensor rows — exactly what a live
  //    BMS would have reported at those timestamps.
  const std::size_t kSparseEvery = 40;   // 40 x 30 s = 20 min
  const std::size_t kFrequentEvery = 10; // 10 x 30 s = 5 min
  const std::vector<std::string> cycles = {"UDDS", "HWFET", "LA92", "US06"};
  std::vector<data::WorkloadSchedule> schedules;
  std::vector<data::ReanchorPlan> sparse, frequent;
  for (const auto& cycle : cycles) {
    const data::Trace trace =
        data::smooth_trace(dataset.test_run(cycle).trace, 30.0);
    schedules.push_back(data::build_workload_schedule(trace, 30.0));
    sparse.push_back(data::build_reanchor_plan(trace, 30.0, kSparseEvery));
    frequent.push_back(
        data::build_reanchor_plan(trace, 30.0, kFrequentEvery));
  }
  std::vector<serve::RolloutLane> lanes;
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    lanes.push_back({&schedules[i], serve::LaneKind::kCascade, {.capacity_ah = 0.0}, nullptr});
    lanes.push_back(
        {&schedules[i], serve::LaneKind::kCascade, {.capacity_ah = 0.0}, &sparse[i]});
    lanes.push_back(
        {&schedules[i], serve::LaneKind::kCascade, {.capacity_ah = 0.0}, &frequent[i]});
  }

  // 3. One lockstep pass for all flavors.
  serve::RolloutEngine engine(model.net, {});
  util::WallTimer timer;
  const std::vector<core::Rollout> rollouts = engine.run(lanes);
  const double ms = timer.millis();

  // 4. Drift vs re-anchor comparison, per cycle and averaged.
  std::printf(
      "\none batched pass (%zu lanes, %zu threads): %.1f ms\n"
      "%-8s %28s %28s %28s\n%-8s %14s %13s %14s %13s %14s %13s\n",
      lanes.size(), engine.num_threads(), ms, "", "open loop",
      "re-anchor 20 min", "re-anchor 5 min", "cycle", "mean|err|",
      "final|err|", "mean|err|", "final|err|", "mean|err|", "final|err|");
  double mean_err[3] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    const core::Rollout* flavors[3] = {&rollouts[3 * i], &rollouts[3 * i + 1],
                                       &rollouts[3 * i + 2]};
    std::printf("%-8s", cycles[i].c_str());
    for (int f = 0; f < 3; ++f) {
      const double mean = mean_abs_error(*flavors[f]);
      mean_err[f] += mean / static_cast<double>(schedules.size());
      std::printf(" %14.4f %13.4f", mean, flavors[f]->final_abs_error());
    }
    std::printf("\n");
  }
  std::printf(
      "\nfleet mean |SoC error|: open loop %.4f, 20-min re-anchor %.4f, "
      "5-min re-anchor %.4f\n"
      "(each recorded sensor row consumed mid-rollout resets accumulated "
      "drift — the closed-loop estimator the paper's open-loop Fig. 5 "
      "implies a BMS would actually run)\n",
      mean_err[0], mean_err[1], mean_err[2]);
  return 0;
}

#pragma once
/// \file example_support.hpp
/// Shared helper for the example binaries: the `--smoke` flag CI passes to
/// run every example end to end with tiny workloads (a few seconds each,
/// tiny epoch counts) so example code cannot bit-rot — the same idea as
/// the bench binaries' --smoke mode. The flag is stripped from argv, so
/// positional-argument parsing in the examples is unaffected.

#include <cstring>

namespace socpinn::examples {

/// Removes every "--smoke" from argv (updating argc) and reports whether
/// one was present.
inline bool strip_smoke_flag(int& argc, char** argv) {
  bool smoke = false;
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return smoke;
}

}  // namespace socpinn::examples

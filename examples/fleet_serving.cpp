/// \file fleet_serving.cpp
/// The fleet-scale deployment scenario: a server holds the SoC of many
/// thousands of cells and advances the whole fleet per planning tick with
/// batched cascaded inference (see serve/fleet_engine.hpp).
///
///   1. every cell connects once and reports (V, I, T) — batched Branch-1
///      estimates seed the per-cell state (voltage used exactly once, as in
///      the paper's Fig. 2 rollout),
///   2. each tick, the server advances every cell under its expected
///      workload with one batched Branch-2 forward per shard,
///   3. the fleet summary (mean SoC, cells below reserve) drives dispatch.
///
/// Run: ./fleet_serving [num_cells] [ticks]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "example_support.hpp"
#include "serve/fleet_engine.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace socpinn;

int main(int argc, char** argv) {
  const bool smoke = examples::strip_smoke_flag(argc, argv);
  const std::size_t cells = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : (smoke ? 2000 : 50000);
  const std::size_t ticks = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                     : (smoke ? 3 : 20);
  if (cells == 0 || ticks == 0) {
    std::fprintf(stderr, "usage: fleet_serving [num_cells > 0] [ticks > 0]\n");
    return 1;
  }

  // A trained model would come from model_io; for the serving demo the
  // architecture + fitted scalers are what matters.
  core::TwoBranchNet net({}, 1);
  net.scaler1() = nn::StandardScaler::from_moments({3.7, -1.5, 25.0},
                                                   {0.3, 2.0, 8.0});
  net.scaler2() = nn::StandardScaler::from_moments(
      {0.5, -1.5, 25.0, 45.0}, {0.25, 2.0, 8.0, 18.0});

  serve::FleetEngine engine(net, cells, {});
  std::printf("fleet of %zu cells on %zu threads (%u hardware)\n", cells,
              engine.num_threads(), std::thread::hardware_concurrency());
  std::printf("panel kernels: %s (override with SOCPINN_FORCE_ISA)\n",
              engine.simd_isa());

  // 1. Connect: every cell reports one sensor reading.
  util::Rng rng(42);
  nn::Matrix sensors(cells, 3);
  for (std::size_t i = 0; i < cells; ++i) {
    sensors(i, 0) = rng.uniform(3.5, 4.1);   // V
    sensors(i, 1) = rng.uniform(-4.0, 0.5);  // I (mostly discharging)
    sensors(i, 2) = rng.uniform(10.0, 35.0); // T
  }
  util::WallTimer connect_timer;
  engine.init_from_sensors(sensors);
  std::printf("connected fleet in %.2f ms (batched Branch-1)\n",
              connect_timer.millis());

  // 2. Tick: per-cell planned workload, 60 s horizon.
  nn::Matrix workload(cells, 3);
  for (std::size_t i = 0; i < cells; ++i) {
    workload(i, 0) = rng.uniform(-5.0, 0.0);  // planned avg current
    workload(i, 1) = rng.uniform(10.0, 35.0); // forecast temperature
    workload(i, 2) = 60.0;                    // horizon N
  }
  engine.step(workload);  // warm-up tick sizes every shard workspace
  util::WallTimer tick_timer;
  for (std::size_t t = 1; t < ticks; ++t) engine.step(workload);
  const double ms_per_tick =
      ticks > 1 ? tick_timer.millis() / static_cast<double>(ticks - 1) : 0.0;

  // 3. Fleet summary.
  double mean = 0.0;
  std::size_t low = 0;
  for (const double soc : engine.soc()) {
    mean += soc;
    if (soc < 0.2) ++low;
  }
  mean /= static_cast<double>(cells);
  std::printf("after %zu ticks: mean SoC %.3f, %zu cells below 20%% reserve\n",
              static_cast<std::size_t>(engine.ticks()), mean, low);
  std::printf("tick latency %.2f ms (%.1f M cells/s)\n", ms_per_tick,
              static_cast<double>(cells) / (ms_per_tick * 1e3));
  return 0;
}

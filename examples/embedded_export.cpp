/// \file embedded_export.cpp
/// The BMS/PMIC deployment path (Sec. III-A argues the model's 2,322
/// parameters / ~9 kB make it suitable for on-board prediction):
///   1. train a PINN on the Sandia-like data,
///   2. export the weights as a dependency-free C header (float32 arrays
///      plus the standardization constants),
///   3. report the memory/ops budget and measure host inference latency.

#include <cstdio>
#include <fstream>

#include "core/experiment.hpp"
#include "core/model_io.hpp"
#include "data/sandia.hpp"
#include "example_support.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

using namespace socpinn;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  const bool smoke = examples::strip_smoke_flag(argc, argv);

  data::SandiaConfig data_config;
  data_config.chemistries = {battery::Chemistry::kNmc};
  const data::SandiaDataset dataset = data::generate_sandia(data_config);

  core::ExperimentSetup setup;
  setup.train_traces = dataset.train_traces();
  setup.native_horizon_s = 120.0;
  setup.cell.capacity_ah =
      battery::cell_params(battery::Chemistry::kNmc).capacity_ah;
  setup.train.epochs = smoke ? 10 : 120;

  std::printf("training PINN-All for export...\n");
  core::TrainedModel model = core::train_two_branch(
      setup, {"PINN-All", core::VariantKind::kPinn, {120.0, 240.0, 360.0}},
      1);

  // Export the C header a firmware build would compile in.
  const std::string header = core::export_c_header(model.net, "socpinn");
  const std::string path = "socpinn_weights.h";
  std::ofstream(path) << header;
  std::printf("wrote %s (%zu bytes of source)\n", path.c_str(),
              header.size());

  // Cost budget (the numbers a PMIC integrator cares about).
  const nn::ModelCost cost = model.net.cost();
  std::printf("\nmodel budget:\n");
  std::printf("  parameters : %zu\n", cost.params);
  std::printf("  storage    : %s (float32)\n", cost.mem_str().c_str());
  std::printf("  MACs       : %s per cascaded inference\n",
              cost.ops_str().c_str());

  // Measured host latency for the two inference patterns.
  constexpr int kReps = 20000;
  util::WallTimer timer;
  double sink = 0.0;
  for (int i = 0; i < kReps; ++i) {
    sink += model.net.estimate_soc(3.8, -2.0, 25.0);
  }
  const double estimate_us = timer.seconds() / kReps * 1e6;
  timer.reset();
  double soc = 0.9;
  for (int i = 0; i < kReps; ++i) {
    soc = model.net.predict_soc(soc, -3.0, 25.0, 120.0);
    if (soc < 0.1) soc = 0.9;
  }
  const double predict_us = timer.seconds() / kReps * 1e6;
  std::printf("\nhost latency (double precision, single core):\n");
  std::printf("  Branch 1 estimate : %.2f us\n", estimate_us);
  std::printf("  Branch 2 predict  : %.2f us\n", predict_us);
  std::printf("  (sink %.3f to keep the optimizer honest)\n", sink / kReps);
  std::printf(
      "\nA 100-step lookahead costs ~%.1f ms on this host; at ~1150 MACs "
      "per step it fits comfortably in a BMS microcontroller budget.\n",
      (estimate_us + 100 * predict_us) / 1000.0);
  return 0;
}

/// \file sharded_fleet.cpp
/// One fleet, N processes, a million cells: the multi-process sharding
/// soak. A ShardedFleet parent forks worker processes, each owning one
/// contiguous shard of the fleet and running the existing FleetEngine
/// over it; everything crosses process boundaries through shared memory
/// (per-cell seqlock mailboxes for telemetry, a versioned model region
/// for hot-swap, per-shard SoC/input spans for commands).
///
///   1. the fleet connects once (batched Branch-1 seeding, scattered to
///      every worker's segment),
///   2. the soak loop ticks the whole fleet while the parent streams
///      per-cell telemetry straight into the workers' shm mailboxes —
///      including a few deliberately non-finite messages, which each
///      worker's ingress edge skips and counts (never poisoning a cell),
///   3. mid-soak, a "retrained" model is published to the shared model
///      region: serialized once, adopted by every worker at its next
///      command — no torn ticks, no restart.
///
/// Run: ./sharded_fleet [num_cells] [workers] [ticks]
/// Default is a 1,000,000-cell soak across 4 worker processes; --smoke
/// shrinks it for CI.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "example_support.hpp"
#include "serve/sharded_fleet.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace socpinn;

namespace {

core::TwoBranchNet make_serving_net(std::uint64_t seed) {
  core::TwoBranchNet net({}, seed);
  net.scaler1() = nn::StandardScaler::from_moments({3.7, -1.5, 25.0},
                                                   {0.3, 2.0, 8.0});
  net.scaler2() = nn::StandardScaler::from_moments(
      {0.5, -1.5, 25.0, 45.0}, {0.25, 2.0, 8.0, 18.0});
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = examples::strip_smoke_flag(argc, argv);
  const std::size_t cells = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : (smoke ? 20000 : 1000000);
  const std::size_t workers = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                       : (smoke ? 2 : 4);
  const std::size_t ticks = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                     : (smoke ? 4 : 20);
  if (cells == 0 || workers == 0 || workers > cells || ticks == 0) {
    std::fprintf(stderr,
                 "usage: sharded_fleet [num_cells > 0] [workers <= cells] "
                 "[ticks > 0]\n");
    return 1;
  }

  const core::TwoBranchNet net = make_serving_net(1);
  serve::ShardedFleetConfig config;
  config.workers = workers;
  serve::ShardedFleet fleet(net, cells, config);
  std::printf("sharded fleet: %zu cells across %zu worker processes\n",
              cells, workers);
  for (const serve::Shard& shard : fleet.shards()) {
    std::printf("  worker %zu owns cells [%zu, %zu)\n", shard.index,
                shard.begin, shard.end);
  }

  // 1. Connect: one batched Branch-1 seed for the whole fleet.
  util::Rng rng(42);
  nn::Matrix sensors(cells, 3);
  for (std::size_t i = 0; i < cells; ++i) {
    sensors(i, 0) = rng.uniform(3.5, 4.1);
    sensors(i, 1) = rng.uniform(-4.0, 0.5);
    sensors(i, 2) = rng.uniform(10.0, 35.0);
  }
  util::WallTimer connect_timer;
  fleet.init_from_sensors(sensors);
  std::printf("connected %zu cells in %.1f ms\n", cells,
              connect_timer.millis());

  // 2 + 3. Soak: tick the fleet while streaming telemetry through shm;
  // hot-swap a retrained model halfway.
  nn::Matrix workload(cells, 3);
  for (std::size_t i = 0; i < cells; ++i) {
    workload(i, 0) = rng.uniform(-5.0, 0.0);
    workload(i, 1) = rng.uniform(10.0, 35.0);
    workload(i, 2) = 60.0;
  }
  fleet.step(workload);  // warm-up tick sizes every worker's scratch
  const core::TwoBranchNet retrained = make_serving_net(2);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  util::WallTimer soak_timer;
  for (std::size_t t = 1; t < ticks + 1; ++t) {
    // ~1% of the fleet reports fresh sensors each tick, straight into the
    // owning worker's shm mailbox; every 40th report is corrupt (NaN) to
    // show the cross-process skip-and-count ingress edge at work.
    for (std::size_t c = t % 100; c < cells; c += 100) {
      const double voltage = (c / 100) % 40 == 0 ? nan : rng.uniform(3.2, 4.1);
      fleet.publish_sensors(
          c, {voltage, rng.uniform(-5.0, 1.0), rng.uniform(5.0, 40.0)});
      if (c % 500 == 0) {
        fleet.publish_workload(
            c, {rng.uniform(-5.0, 0.0), rng.uniform(10.0, 35.0), 60.0});
      }
    }
    if (t == ticks / 2 + 1) {
      util::WallTimer swap_timer;
      fleet.swap_model(retrained);
      std::printf(
          "tick %zu: hot-swapped retrained model (serialized once, %.1f ms; "
          "workers adopt at their next command)\n",
          t, swap_timer.millis());
    }
    fleet.step(workload);
  }
  const double soak_ms = soak_timer.millis();
  const double ms_per_tick = soak_ms / static_cast<double>(ticks);

  double mean = 0.0;
  for (const double soc : fleet.soc()) mean += soc;
  mean /= static_cast<double>(cells);
  const serve::IngestStats drops = fleet.ingest_stats();
  std::printf(
      "soaked %zu ticks at %.2f ms/tick (%.2f M cells/s) across %zu "
      "processes; mean SoC %.3f\n",
      ticks, ms_per_tick,
      static_cast<double>(cells) / (ms_per_tick * 1e-3) * 1e-6, workers,
      mean);
  std::printf(
      "ingress edge dropped %llu corrupt sensor reports, %llu corrupt "
      "overrides (skip-and-count, aggregated across workers)\n",
      static_cast<unsigned long long>(drops.dropped_sensor_reports),
      static_cast<unsigned long long>(drops.dropped_workload_overrides));
  for (std::size_t w = 0; w < fleet.num_workers(); ++w) {
    if (fleet.worker_model_version(w) != fleet.model_version()) {
      std::fprintf(stderr, "worker %zu did not adopt the swapped model\n", w);
      return 1;
    }
  }
  std::printf("every worker serves model version %llu\n",
              static_cast<unsigned long long>(fleet.model_version()));
  return 0;
}

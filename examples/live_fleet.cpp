/// \file live_fleet.cpp
/// The live-serving scenario the paper's deployment pitch implies: the
/// fleet keeps estimating SoC while telemetry streams in and a retrained
/// model rolls out — no tick is ever stalled or dropped.
///
///   1. the fleet connects once (batched Branch-1 seeding),
///   2. producer threads stream per-cell sensor reports and workload
///      overrides into the engine's lock-free mailbox while the main
///      thread keeps ticking — each tick drains its shard's cell range
///      and re-anchors exactly the cells that reported in,
///   3. mid-run, a "retrained" model is hot-swapped in (RCU-style): the
///      in-flight tick finishes on the old model, the next tick serves
///      the new one.
///
/// Run: ./live_fleet [num_cells] [ticks]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "example_support.hpp"
#include "serve/fleet_engine.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace socpinn;

namespace {

core::TwoBranchNet make_serving_net(std::uint64_t seed) {
  // A trained model would come from model_io; for the demo the
  // architecture + fitted scalers are what matters.
  core::TwoBranchNet net({}, seed);
  net.scaler1() = nn::StandardScaler::from_moments({3.7, -1.5, 25.0},
                                                   {0.3, 2.0, 8.0});
  net.scaler2() = nn::StandardScaler::from_moments(
      {0.5, -1.5, 25.0, 45.0}, {0.25, 2.0, 8.0, 18.0});
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = examples::strip_smoke_flag(argc, argv);
  const std::size_t cells = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : (smoke ? 2000 : 50000);
  const std::size_t ticks = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                     : (smoke ? 6 : 40);
  if (cells == 0 || ticks == 0) {
    std::fprintf(stderr, "usage: live_fleet [num_cells > 0] [ticks > 0]\n");
    return 1;
  }

  const core::TwoBranchNet net = make_serving_net(1);
  serve::FleetEngine engine(net, cells, {});
  std::printf("live fleet of %zu cells on %zu threads\n", cells,
              engine.num_threads());

  // 1. Connect.
  util::Rng rng(42);
  nn::Matrix sensors(cells, 3);
  for (std::size_t i = 0; i < cells; ++i) {
    sensors(i, 0) = rng.uniform(3.5, 4.1);
    sensors(i, 1) = rng.uniform(-4.0, 0.5);
    sensors(i, 2) = rng.uniform(10.0, 35.0);
  }
  engine.init_from_sensors(sensors);

  // 2. Producers: two telemetry threads, each owning half the fleet (one
  // producer per cell — the mailbox's SPSC contract), streaming sensor
  // reports and revised workload forecasts as fast as they can.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> published{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      const std::size_t begin = cells * p / 2;
      const std::size_t end = cells * (p + 1) / 2;
      util::Rng prng(7 + p);
      std::uint64_t count = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::size_t cell = begin; cell < end; ++cell) {
          engine.mailbox().publish_sensors(
              cell, {prng.uniform(3.2, 4.1), prng.uniform(-5.0, 1.0),
                     prng.uniform(5.0, 40.0)});
          if (cell % 4 == 0) {
            engine.mailbox().publish_workload(
                cell, {prng.uniform(-5.0, 0.0), prng.uniform(10.0, 35.0),
                       60.0});
          }
          ++count;
        }
      }
      published.fetch_add(count, std::memory_order_relaxed);
    });
  }

  // 3. Tick through the stream; hot-swap a "retrained" model halfway.
  nn::Matrix workload(cells, 3);
  for (std::size_t i = 0; i < cells; ++i) {
    workload(i, 0) = rng.uniform(-5.0, 0.0);
    workload(i, 1) = rng.uniform(10.0, 35.0);
    workload(i, 2) = 60.0;
  }
  engine.step(workload);  // warm-up tick sizes every shard's scratch
  // The "retraining" finishes before the loop: snapshot conversion runs
  // wherever the trainer lives (here: up front), so the swap inside the
  // serving loop is nothing but an atomic publish — the tick cadence
  // below genuinely never absorbs the conversion cost.
  const core::TwoBranchNet retrained = make_serving_net(2);
  const auto retrained_snapshot =
      std::make_shared<const core::TwoBranchSnapshot>(
          retrained, core::Precision::kFloat64);
  util::WallTimer timer;
  for (std::size_t t = 1; t < ticks; ++t) {
    if (t == ticks / 2) {
      engine.swap_model(retrained_snapshot);
      std::printf("tick %zu: hot-swapped retrained model (zero ticks "
                  "dropped)\n", t);
    }
    engine.step(workload);
  }
  const double ms_per_tick =
      ticks > 1 ? timer.millis() / static_cast<double>(ticks - 1) : 0.0;
  stop.store(true, std::memory_order_relaxed);
  for (auto& p : producers) p.join();

  double mean = 0.0;
  for (const double soc : engine.soc()) mean += soc;
  mean /= static_cast<double>(cells);
  std::printf(
      "served %zu ticks at %.2f ms/tick while ingesting %.1f M telemetry "
      "messages; mean SoC %.3f\n",
      static_cast<std::size_t>(engine.ticks()), ms_per_tick,
      static_cast<double>(published.load()) * 1e-6, mean);
  return 0;
}

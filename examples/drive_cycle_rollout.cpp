/// \file drive_cycle_rollout.cpp
/// Battery-lifetime prediction for an EV driving cycle (the paper's Fig. 5
/// scenario): given only the *initial* sensor readings and a planned
/// current/temperature profile, the two-branch PINN rolls the SoC forward
/// autoregressively until the battery is empty — no voltage feedback after
/// the first timestamp, which is exactly what classical estimators cannot
/// do.
///
/// Trains a PINN-30s on the LG-like mixed cycles, rolls it over the UDDS
/// test cycle, prints an ASCII SoC chart, and writes the trajectory to
/// rollout_udds.csv for plotting.

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "data/lg.hpp"
#include "data/preprocess.hpp"
#include "example_support.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

using namespace socpinn;

namespace {

/// Minimal ASCII chart: one row per SoC band, '*' = prediction, 'o' =
/// ground truth, '#' = both in the same band.
void print_chart(const core::Rollout& rollout) {
  constexpr int kRows = 10;
  constexpr int kCols = 72;
  const std::size_t n = rollout.soc.size();
  for (int row = kRows - 1; row >= 0; --row) {
    const double band_low = static_cast<double>(row) / kRows;
    std::string line(kCols, ' ');
    for (int col = 0; col < kCols; ++col) {
      const std::size_t idx = static_cast<std::size_t>(col) * (n - 1) /
                              static_cast<std::size_t>(kCols - 1);
      const bool pred = rollout.soc[idx] >= band_low &&
                        rollout.soc[idx] < band_low + 1.0 / kRows;
      const bool truth = rollout.truth[idx] >= band_low &&
                         rollout.truth[idx] < band_low + 1.0 / kRows;
      line[static_cast<std::size_t>(col)] =
          pred && truth ? '#' : (pred ? '*' : (truth ? 'o' : ' '));
    }
    std::printf("%4.1f |%s|\n", band_low + 0.5 / kRows, line.c_str());
  }
  std::printf("      0 s%*s%.0f s\n", kCols - 6, "",
              rollout.times_s.back());
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  const bool smoke = examples::strip_smoke_flag(argc, argv);

  // Dataset: 7 mixed training cycles + pure-cycle test discharges.
  const data::LgDataset dataset = data::generate_lg(data::LgConfig{});

  core::ExperimentSetup setup;
  for (const auto& run : dataset.train_runs) {
    setup.train_traces.push_back(data::smooth_trace(run.trace, 30.0));
  }
  setup.native_horizon_s = 30.0;
  setup.cell.capacity_ah =
      battery::cell_params(battery::Chemistry::kLgHg2).capacity_ah;
  setup.train.epochs = smoke ? 8 : 200;
  setup.branch1_stride = 100;
  setup.branch2_stride = 100;

  std::printf("training PINN-30s on %zu mixed cycles...\n",
              setup.train_traces.size());
  const core::VariantSpec pinn30{"PINN-30s", core::VariantKind::kPinn,
                                 {30.0}};
  core::TrainedModel model = core::train_two_branch(setup, pinn30, 1);

  // Roll over the full UDDS discharge: voltage used once, then Branch 2
  // advances the SoC in 30 s steps fed with the planned workload.
  const data::Trace udds =
      data::smooth_trace(dataset.test_run("UDDS").trace, 30.0);
  const core::Rollout rollout = core::rollout_cascade(model.net, udds, 30.0);

  std::printf("\nUDDS full-discharge rollout (%zu autoregressive steps):\n",
              rollout.soc.size() - 1);
  std::printf("  initial estimate: %.3f (truth %.3f)\n", rollout.soc.front(),
              rollout.truth.front());
  std::printf("  final prediction: %.3f (truth %.3f) -> |error| %.3f\n",
              rollout.soc.back(), rollout.truth.back(),
              rollout.final_abs_error());
  std::printf("\nSoC trajectory ('*' predicted, 'o' truth, '#' overlap):\n");
  print_chart(rollout);

  util::CsvDocument doc;
  doc.header = {"time_s", "soc_pred", "soc_true"};
  doc.columns = {rollout.times_s, rollout.soc, rollout.truth};
  util::write_csv("rollout_udds.csv", doc);
  std::printf("\ntrajectory written to rollout_udds.csv\n");
  return 0;
}

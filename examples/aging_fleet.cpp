/// \file aging_fleet.cpp
/// The slow/fast control split the per-cell parameter plane exists for:
/// a fleet's cells age (capacity fades month over month), the fast SoC
/// loop keeps ticking Eq. 1 at serving rate, and a background SoH
/// estimator closes the loop — it runs periodic capacity tests, estimates
/// each cell's state of health from the discharge trace, and publishes
/// fresh CellParams into the engine's wait-free mailbox while the fast
/// loop runs. The drain applies them at the top of the next tick; no tick
/// ever blocks on the estimator.
///
/// Two fleets track the same ground truth over a multi-month simulation:
///
///   * "updated"  — receives the estimator's capacity updates,
///   * "control"  — frozen at the nameplate capacity forever.
///
/// Each month the fleet works through a deep net-discharge duty cycle and
/// recharges/calibrates at the end (SoC re-anchored at full charge — the
/// standard BMS reset). Within a month, coulomb counting with the WRONG
/// capacity accumulates SoC error in proportion to the charge moved; the
/// control fleet's error grows every month as the true capacity fades
/// away from the nameplate, while the updated fleet's error stays bounded
/// by the estimator's accuracy.
///
/// Run: ./aging_fleet [num_cells] [months]

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <thread>
#include <vector>

#include "battery/cell.hpp"
#include "battery/chemistry.hpp"
#include "core/cell_params.hpp"
#include "core/soh_ensemble.hpp"
#include "data/protocol.hpp"
#include "example_support.hpp"
#include "serve/fleet_engine.hpp"
#include "util/rng.hpp"

using namespace socpinn;

namespace {

core::TwoBranchNet make_serving_net(std::uint64_t seed) {
  // The demo exercises the physics lane, so the net only rides along for
  // the engine's plumbing; fitted scalers keep it well-formed.
  core::TwoBranchNet net({}, seed);
  net.scaler1() = nn::StandardScaler::from_moments({3.7, -1.5, 25.0},
                                                   {0.3, 2.0, 8.0});
  net.scaler2() = nn::StandardScaler::from_moments(
      {0.5, -1.5, 25.0, 45.0}, {0.25, 2.0, 8.0, 18.0});
  return net;
}

double mean_abs_error(std::span<const double> pred,
                      std::span<const double> truth) {
  double sum = 0.0;
  for (std::size_t c = 0; c < pred.size(); ++c) {
    sum += std::abs(pred[c] - truth[c]);
  }
  return sum / static_cast<double>(pred.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = examples::strip_smoke_flag(argc, argv);
  const std::size_t cells = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : (smoke ? 8 : 32);
  const std::size_t months = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : (smoke ? 3 : 6);
  if (cells == 0 || months == 0 || months > 8) {
    std::fprintf(stderr,
                 "usage: aging_fleet [num_cells > 0] [months in 1..8]\n");
    return 1;
  }

  const battery::CellParams fresh =
      battery::cell_params(battery::Chemistry::kNmc);
  const double rated = fresh.capacity_ah;

  // Per-cell fade rates: by the last month the slowest-aging cell has
  // lost a few percent and the fastest has lost a quarter of its
  // capacity. (aged_cell_params accepts SoH down to 0.5.)
  util::Rng rng(4);
  std::vector<double> fade_per_month(cells);
  for (auto& f : fade_per_month) f = rng.uniform(0.01, 0.04);
  const auto soh_at = [&](std::size_t cell, std::size_t month) {
    return 1.0 - fade_per_month[cell] * static_cast<double>(month);
  };

  const core::TwoBranchNet net = make_serving_net(1);
  serve::FleetEngine updated(net, cells, {});
  serve::FleetEngine control(net, cells, {});
  const std::vector<serve::CellMode> modes(cells,
                                           serve::CellMode::kPhysicsOnly);
  updated.set_cell_modes(modes);
  control.set_cell_modes(modes);

  // Background SoH estimator: whenever the fast loop releases a new month,
  // run a capacity test per cell (a full CC discharge of the aged cell,
  // sampled like lab equipment), estimate SoH from the trace, and publish
  // the revised capacity into the updated fleet's mailbox. The publishes
  // are wait-free; the fast loop drains them at its next tick.
  std::atomic<std::size_t> month_released{0};
  std::atomic<std::size_t> month_published{0};
  std::atomic<bool> done{false};
  std::thread estimator([&] {
    std::size_t next = 1;
    while (!done.load(std::memory_order_acquire)) {
      if (month_released.load(std::memory_order_acquire) < next) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t c = 0; c < cells; ++c) {
        const battery::CellParams aged =
            core::aged_cell_params(fresh, soh_at(c, next));
        battery::Cell cell(aged, 1.0, 25.0);
        data::ProtocolRunner runner(60.0);
        const data::Trace discharge =
            runner.run(cell, {data::cc_discharge(aged, 1.0)});
        const double estimate =
            core::estimate_soh_from_discharge(discharge, rated);
        updated.mailbox().publish_params(c, {rated * estimate, 1.0, 0.0});
      }
      month_published.store(next, std::memory_order_release);
      ++next;
    }
  });

  std::printf("aging fleet: %zu cells, %zu months, rated %.2f Ah\n", cells,
              months, rated);
  std::printf("%-7s %-14s %-14s %s\n", "month", "updated MAE", "control MAE",
              "mean true capacity");

  // Fast loop. Each month: recharge + calibrate (SoC re-anchored at 0.95
  // everywhere), then a deep discharge duty cycle in hourly ticks. Ground
  // truth coulomb-counts with each cell's TRUE faded capacity.
  const std::size_t ticks = smoke ? 8 : 10;
  // ~6.7 % of nameplate per hourly tick: a deep monthly duty cycle that
  // ends near empty for the most-faded cells without clamping at 0.
  const double current_a = -0.2;
  const double horizon_s = 3600.0;  // one tick = one hour
  std::vector<double> truth(cells);
  double last_updated_mae = 0.0;
  double last_control_mae = 0.0;
  for (std::size_t month = 1; month <= months; ++month) {
    // Previous month's capacity test finishes before this month's duty
    // cycle starts (the slow loop lags the fleet by design; the wait is
    // at the month boundary, never inside the tick loop).
    if (month > 1) {
      while (month_published.load(std::memory_order_acquire) < month - 1) {
        std::this_thread::yield();
      }
    }
    std::fill(truth.begin(), truth.end(), 0.95);
    updated.set_soc(truth);
    control.set_soc(truth);
    month_released.store(month, std::memory_order_release);

    double mean_cap = 0.0;
    for (std::size_t t = 0; t < ticks; ++t) {
      updated.run(current_a, 25.0, horizon_s, 1);
      control.run(current_a, 25.0, horizon_s, 1);
      for (std::size_t c = 0; c < cells; ++c) {
        const double true_cap =
            rated * fresh.true_capacity_scale * soh_at(c, month);
        if (t == 0) mean_cap += true_cap / static_cast<double>(cells);
        truth[c] = core::eq1_predict_clamped(
            truth[c], current_a, horizon_s, {.capacity_ah = true_cap});
      }
    }
    last_updated_mae = mean_abs_error(updated.soc(), truth);
    last_control_mae = mean_abs_error(control.soc(), truth);
    std::printf("%-7zu %-14.4f %-14.4f %.2f Ah\n", month, last_updated_mae,
                last_control_mae, mean_cap);
  }
  done.store(true, std::memory_order_release);
  estimator.join();

  const auto stats = updated.ingest_stats();
  std::printf(
      "published %zu months of capacity updates, %llu dropped; final-month "
      "error: updated %.4f vs frozen-nameplate %.4f\n",
      static_cast<std::size_t>(month_published.load()),
      static_cast<unsigned long long>(stats.dropped_param_updates),
      last_updated_mae, last_control_mae);
  if (last_updated_mae >= last_control_mae) {
    std::fprintf(stderr,
                 "ERROR: the SoH-updated fleet should beat the frozen "
                 "control by the final month\n");
    return 1;
  }
  return 0;
}

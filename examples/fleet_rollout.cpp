/// \file fleet_rollout.cpp
/// Fleet-scale Fig. 5: evaluate a whole synthetic fleet of discharge
/// traces in ONE engine call instead of a per-trace loop.
///
///   1. train a PINN-30s on LG-like mixed cycles (coarse 1 s cadence and
///      the paper's 30 s smoothing; training stays under a minute),
///   2. build the fleet: every pure test cycle contributes several staggered
///      discharge segments — ragged lengths, different starting SoC,
///   3. extract each trace's data::WorkloadSchedule once, pair every NN lane
///      with a Physics-Only (Eq. 1) lane, and roll ALL lanes in one batched
///      lockstep pass through serve::RolloutEngine,
///   4. compare final-SoC errors per advancement rule — the same-pass
///      baseline comparison of the paper's Fig. 5, over a fleet.
///
/// Run: ./fleet_rollout [segments_per_cycle] [epochs]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiment.hpp"
#include "data/lg.hpp"
#include "data/preprocess.hpp"
#include "example_support.hpp"
#include "serve/rollout_engine.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

using namespace socpinn;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  const bool smoke = examples::strip_smoke_flag(argc, argv);
  const std::size_t segments =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (smoke ? 2 : 16);
  const std::size_t epochs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (smoke ? 8 : 200);
  if (segments == 0 || epochs == 0) {
    std::fprintf(stderr, "usage: fleet_rollout [segments > 0] [epochs > 0]\n");
    return 1;
  }

  // 1. Train on a coarse LG-like dataset (1 s cadence, 30 s horizon).
  data::LgConfig data_config;
  data_config.sample_period_s = 1.0;
  const data::LgDataset dataset = data::generate_lg(data_config);

  core::ExperimentSetup setup;
  for (const auto& run : dataset.train_runs) {
    setup.train_traces.push_back(data::smooth_trace(run.trace, 30.0));
  }
  setup.native_horizon_s = 30.0;
  setup.cell.capacity_ah =
      battery::cell_params(battery::Chemistry::kLgHg2).capacity_ah;
  setup.train.epochs = epochs;
  setup.branch1_stride = 10;
  setup.branch2_stride = 10;

  std::printf("training PINN-30s (%zu epochs) on %zu mixed cycles...\n",
              epochs, setup.train_traces.size());
  const core::VariantSpec pinn30{"PINN-30s", core::VariantKind::kPinn,
                                 {30.0}};
  const core::TrainedModel model = core::train_two_branch(setup, pinn30, 1);

  // 2.+3. Build the ragged fleet and extract every schedule once. Each
  // segment starts deeper into the discharge (lower initial SoC) and the
  // NN lane is paired with an Eq. 1 lane over the same schedule.
  const std::vector<std::string> cycles = {"UDDS", "HWFET", "LA92", "US06"};
  std::vector<data::WorkloadSchedule> schedules;
  for (const auto& cycle : cycles) {
    const data::Trace trace =
        data::smooth_trace(dataset.test_run(cycle).trace, 30.0);
    for (std::size_t s = 0; s < segments; ++s) {
      const std::size_t from = s * trace.size() / (2 * segments);
      schedules.push_back(data::build_workload_schedule(
          trace.slice(from, trace.size()), 30.0));
    }
  }
  std::vector<serve::RolloutLane> lanes;
  lanes.reserve(2 * schedules.size());
  for (const auto& schedule : schedules) {
    lanes.push_back({&schedule, serve::LaneKind::kCascade, 0.0});
    lanes.push_back(
        {&schedule, serve::LaneKind::kPhysicsOnly, setup.cell});
  }
  std::size_t total_steps = 0;
  for (const auto& schedule : schedules) {
    total_steps += 2 * schedule.num_steps();
  }

  serve::RolloutEngine engine(model.net, {});
  std::printf(
      "fleet: %zu lanes (%zu NN + %zu physics, ragged lengths) on %zu "
      "threads, %zu total steps\n",
      lanes.size(), schedules.size(), schedules.size(),
      engine.num_threads(), total_steps);

  util::WallTimer timer;
  const std::vector<core::Rollout> rollouts = engine.run(lanes);
  const double ms = timer.millis();

  // 4. Same-pass comparison: NN cascade vs Eq. 1 over identical workloads.
  double nn_err = 0.0, physics_err = 0.0;
  for (std::size_t i = 0; i < rollouts.size(); i += 2) {
    nn_err += rollouts[i].final_abs_error();
    physics_err += rollouts[i + 1].final_abs_error();
  }
  nn_err /= static_cast<double>(schedules.size());
  physics_err /= static_cast<double>(schedules.size());

  std::printf("one batched pass: %.1f ms (%.0f k steps/s)\n", ms,
              static_cast<double>(total_steps) / ms);
  std::printf("mean |final error|: PINN-30s %.3f vs Physics-Only %.3f\n",
              nn_err, physics_err);
  std::printf(
      "(the NN lane corrects the capacity mismatch Eq. 1 cannot see — the "
      "paper's Fig. 5 conclusion, here over a whole fleet in one call)\n");
  return 0;
}

/// \file quickstart.cpp
/// Minimal end-to-end tour of the library:
///   1. simulate a small battery-cycling dataset (Sandia-like protocol),
///   2. train the two-branch PINN (Branch 1 estimator + Branch 2 predictor
///      with the Coulomb-counting physics loss),
///   3. evaluate estimation and prediction MAE on held-out cycles,
///   4. save the trained model and reload it.
///
/// Runs in a few seconds. See drive_cycle_rollout / multi_horizon_planning
/// for the application-level scenarios.

#include <cstdio>

#include "core/experiment.hpp"
#include "core/model_io.hpp"
#include "data/sandia.hpp"
#include "example_support.hpp"
#include "nn/metrics.hpp"
#include "util/log.hpp"

using namespace socpinn;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  const bool smoke = examples::strip_smoke_flag(argc, argv);

  // 1. Simulate: one NMC 18650 cycled at three ambients. Training cycles
  //    discharge at 1C; held-out cycles at 2C and 3C (the paper's split).
  data::SandiaConfig data_config;
  data_config.chemistries = {battery::Chemistry::kNmc};
  data_config.cycles_per_condition = 2;
  const data::SandiaDataset dataset = data::generate_sandia(data_config);
  std::printf("simulated %zu training and %zu test cycles\n",
              dataset.train_runs.size(), dataset.test_runs.size());

  // 2. Train a PINN whose physics loss spans three horizons. Only the
  //    N = 120 s horizon has labels; 240/360 s come from Eq. 1 alone.
  core::ExperimentSetup setup;
  setup.train_traces = dataset.train_traces();
  setup.test_traces = dataset.test_traces();
  setup.native_horizon_s = 120.0;
  setup.cell.capacity_ah =
      battery::cell_params(battery::Chemistry::kNmc).capacity_ah;
  setup.train.epochs = smoke ? 10 : 150;

  const core::VariantSpec pinn_all{
      "PINN-All", core::VariantKind::kPinn, {120.0, 240.0, 360.0}};
  core::TrainedModel model = core::train_two_branch(setup, pinn_all, /*seed=*/1);
  std::printf("trained %zu parameters (%s at float32)\n",
              model.net.num_params(), model.net.cost().mem_str().c_str());
  std::printf("final training losses: branch1 %.4f, branch2 %.4f\n",
              model.branch1_history.final_data_loss(),
              model.branch2_history.final_data_loss());

  // 3. Evaluate on the held-out high-rate cycles.
  const std::span<const data::Trace> tests(setup.test_traces);
  const auto b1_test = data::build_branch1_data(tests);
  std::printf("SoC(t) estimation MAE  (test): %.4f\n",
              nn::mae(model.net.estimate_batch(b1_test.x), b1_test.y));
  for (double horizon : {120.0, 240.0, 360.0}) {
    const auto eval = data::build_horizon_eval(tests, horizon);
    const core::HorizonPrediction pred =
        core::predict_cascade(model.net, eval);
    std::printf("SoC(t+%3.0fs) prediction MAE (test): %.4f\n", horizon,
                nn::mae(pred.soc_pred, eval.target));
  }

  // 4. Persist and reload.
  const std::string path = "quickstart_model.txt";
  core::save_model(path, model.net);
  core::TwoBranchNet reloaded = core::load_model(path);
  std::printf("model round-trip via %s: SoC(0.8, -3A, 25C, +120s) = %.4f\n",
              path.c_str(), reloaded.predict_soc(0.8, -3.0, 25.0, 120.0));
  return 0;
}

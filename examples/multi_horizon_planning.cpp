/// \file multi_horizon_planning.cpp
/// The multi-horizon power-management scenario the paper motivates in
/// Sec. III: "faster-yet-approximate long-term decisions (e.g., on the best
/// overall route) with slower-yet-precise short-term ones".
///
/// A drone must pick one of three mission profiles (different
/// current-vs-time workloads). The planner first screens all candidates
/// with coarse 70 s prediction steps (cheap, one Branch-2 call per step),
/// then re-evaluates the winner with fine 30 s steps to confirm the SoC
/// reserve before committing. One trained network serves both horizons —
/// that is what the N input of Branch 2 buys.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "data/lg.hpp"
#include "data/preprocess.hpp"
#include "example_support.hpp"
#include "util/log.hpp"
#include "util/math.hpp"

using namespace socpinn;

namespace {

struct Mission {
  std::string name;
  std::vector<double> current_a;  ///< planned draw per second (+=charge)
  double temp_c;
};

/// Rolls SoC forward with Branch 2 alone at the given horizon, starting
/// from soc0. The workload is averaged over each step window. Returns the
/// predicted SoC trajectory (one point per step).
std::vector<double> plan_rollout(core::TwoBranchNet& net, double soc0,
                                 const Mission& mission, double horizon_s) {
  std::vector<double> socs{soc0};
  const auto step = static_cast<std::size_t>(horizon_s);
  for (std::size_t t = 0; t + step <= mission.current_a.size(); t += step) {
    double avg = 0.0;
    for (std::size_t j = t; j < t + step; ++j) avg += mission.current_a[j];
    avg /= static_cast<double>(step);
    socs.push_back(
        net.predict_soc(socs.back(), avg, mission.temp_c, horizon_s));
  }
  return socs;
}

/// Builds a mission profile of `duration_s` seconds alternating cruise and
/// burst segments.
Mission make_mission(const std::string& name, double cruise_a,
                     double burst_a, double burst_every_s,
                     double duration_s, double temp_c) {
  Mission mission;
  mission.name = name;
  mission.temp_c = temp_c;
  mission.current_a.reserve(static_cast<std::size_t>(duration_s));
  for (std::size_t t = 0; t < static_cast<std::size_t>(duration_s); ++t) {
    const bool burst =
        burst_every_s > 0.0 &&
        static_cast<std::size_t>(t) % static_cast<std::size_t>(
                                          burst_every_s) <
            30;
    mission.current_a.push_back(burst ? -burst_a : -cruise_a);
  }
  return mission;
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  const bool smoke = examples::strip_smoke_flag(argc, argv);
  constexpr double kReserveSoc = 0.15;  // mission abort threshold

  // Train one PINN-All model on the LG-like mixed cycles: the physics loss
  // over {30, 50, 70} s is what makes a single network trustworthy at
  // both planning horizons.
  const data::LgDataset dataset = data::generate_lg(data::LgConfig{});
  core::ExperimentSetup setup;
  for (const auto& run : dataset.train_runs) {
    setup.train_traces.push_back(data::smooth_trace(run.trace, 30.0));
  }
  setup.native_horizon_s = 30.0;
  setup.cell.capacity_ah =
      battery::cell_params(battery::Chemistry::kLgHg2).capacity_ah;
  setup.train.epochs = smoke ? 8 : 200;
  setup.branch1_stride = 100;
  setup.branch2_stride = 100;

  std::printf("training PINN-All planner model...\n");
  core::TrainedModel model = core::train_two_branch(
      setup, {"PINN-All", core::VariantKind::kPinn, {30.0, 50.0, 70.0}}, 1);

  // Current state of the battery, as a BMS would read it.
  const double soc_now =
      util::clamp01(model.net.estimate_soc(3.95, -1.0, 25.0));
  std::printf("estimated current SoC from (V=3.95, I=-1A, T=25C): %.3f\n\n",
              soc_now);

  // Three candidate 35-minute missions.
  const std::vector<Mission> missions = {
      make_mission("direct-fast", 2.4, 6.0, 120.0, 2100.0, 25.0),
      make_mission("scenic-slow", 1.6, 4.0, 300.0, 2100.0, 25.0),
      make_mission("headwind", 2.0, 7.5, 90.0, 2100.0, 25.0),
  };

  // Phase 1: coarse screening at the 70 s horizon (fewest NN calls).
  std::printf("phase 1 — coarse screening (70 s steps):\n");
  std::size_t best = 0;
  double best_final = -1.0;
  for (std::size_t m = 0; m < missions.size(); ++m) {
    const auto socs = plan_rollout(model.net, soc_now, missions[m], 70.0);
    const bool feasible = socs.back() >= kReserveSoc;
    std::printf("  %-12s -> predicted final SoC %.3f (%zu steps) %s\n",
                missions[m].name.c_str(), socs.back(), socs.size() - 1,
                feasible ? "feasible" : "VIOLATES RESERVE");
    if (feasible && socs.back() > best_final) {
      best_final = socs.back();
      best = m;
    }
  }
  if (best_final < 0.0) {
    std::printf("no mission satisfies the %.0f %% reserve — abort.\n",
                kReserveSoc * 100);
    return 0;
  }

  // Phase 2: precise re-check of the winner at the 30 s horizon.
  const Mission& chosen = missions[best];
  const auto fine = plan_rollout(model.net, soc_now, chosen, 30.0);
  std::printf(
      "\nphase 2 — fine confirmation of '%s' (30 s steps):\n"
      "  predicted final SoC %.3f, minimum along the way %.3f\n",
      chosen.name.c_str(), fine.back(),
      *std::min_element(fine.begin(), fine.end()));
  const bool confirmed = fine.back() >= kReserveSoc;
  std::printf("  reserve check at fine horizon: %s\n",
              confirmed ? "CONFIRMED" : "REJECTED (fall back to replanning)");
  std::printf(
      "\nTotal Branch-2 invocations: coarse %zu vs fine-only planning "
      "%zu — the coarse pass screens candidates ~2.3x cheaper.\n",
      missions.size() * (2100 / 70) + (2100 / 30),
      missions.size() * (2100 / 30));
  return 0;
}

#!/usr/bin/env python3
"""Unit tests for tools/check_bench_regression.py.

The script is the CI tripwire between "benchmark rotted" and "benchmark
regressed"; these tests pin its three behavioral contracts — the `when`
gate, the reverse-coverage (emitted-but-unlisted) failure mode, and the
min/max comparison directions — so a refactor can't silently flip one.
Run by ctest as tools.check_bench_regression.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[1] / "check_bench_regression.py"


class BenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.bench_dir = Path(self._tmp.name) / "bench"
        self.bench_dir.mkdir()
        self.thresholds_path = Path(self._tmp.name) / "thresholds.json"
        self.addCleanup(self._tmp.cleanup)

    def run_check(self, thresholds: dict, benches: dict):
        """Writes thresholds + BENCH jsons, runs the script, returns proc."""
        self.thresholds_path.write_text(json.dumps(thresholds))
        for name, data in benches.items():
            (self.bench_dir / name).write_text(json.dumps(data))
        return subprocess.run(
            [sys.executable, str(SCRIPT), str(self.thresholds_path),
             str(self.bench_dir)],
            capture_output=True, text=True)

    # ------------------------------------------------------- `when` gate

    def test_gate_absent_skips_bound(self):
        proc = self.run_check(
            {"BENCH_x.json": {"avx2_speedup": {"min": 2.0,
                                               "when": "has_avx2"}}},
            {"BENCH_x.json": {}})
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("SKIP", proc.stdout)
        self.assertIn("gate 'has_avx2' is off", proc.stdout)

    def test_gate_falsy_skips_bound(self):
        proc = self.run_check(
            {"BENCH_x.json": {"avx2_speedup": {"min": 2.0,
                                               "when": "has_avx2"}}},
            {"BENCH_x.json": {"has_avx2": 0, "avx2_speedup": 0.1}})
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("SKIP", proc.stdout)

    def test_gate_truthy_enforces_bound(self):
        proc = self.run_check(
            {"BENCH_x.json": {"avx2_speedup": {"min": 2.0,
                                               "when": "has_avx2"}}},
            {"BENCH_x.json": {"has_avx2": 1, "avx2_speedup": 1.0}})
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("FAIL", proc.stdout)

    def test_gate_truthy_makes_missing_metric_fail(self):
        # A rotted benchmark that stops emitting a gated metric must still
        # fail on hosts whose gate is on — the gate is not a free pass.
        proc = self.run_check(
            {"BENCH_x.json": {"avx2_speedup": {"min": 2.0,
                                               "when": "has_avx2"}}},
            {"BENCH_x.json": {"has_avx2": 1}})
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("metric 'avx2_speedup' missing", proc.stdout)

    # ------------------------------------- emitted-but-unlisted coverage

    def test_emitted_but_unlisted_bench_fails(self):
        proc = self.run_check(
            {"BENCH_old.json": {"m": {"min": 1.0}}},
            {"BENCH_old.json": {"m": 2.0},
             "BENCH_renamed.json": {"m": 2.0}})
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("BENCH_renamed.json: present but not listed",
                      proc.stdout)

    def test_listed_but_missing_file_fails(self):
        proc = self.run_check(
            {"BENCH_gone.json": {"m": {"min": 1.0}}}, {})
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("BENCH_gone.json: missing", proc.stdout)

    def test_comment_keys_are_ignored_both_directions(self):
        proc = self.run_check(
            {"_comment": {"why": "doc"},
             "BENCH_x.json": {"m": {"min": 1.0}}},
            {"BENCH_x.json": {"m": 2.0}})
        self.assertEqual(proc.returncode, 0, proc.stdout)

    # ------------------------------------------- comparison directions

    def test_min_is_a_floor(self):
        base = {"BENCH_x.json": {"speedup": {"min": 1.5}}}
        self.assertEqual(
            self.run_check(base, {"BENCH_x.json": {"speedup": 1.5}})
            .returncode, 0)  # boundary passes
        self.assertEqual(
            self.run_check(base, {"BENCH_x.json": {"speedup": 1.49}})
            .returncode, 1)  # below the floor fails

    def test_max_is_a_ceiling(self):
        base = {"BENCH_x.json": {"allocs": {"max": 0.01}}}
        self.assertEqual(
            self.run_check(base, {"BENCH_x.json": {"allocs": 0.01}})
            .returncode, 0)  # boundary passes
        self.assertEqual(
            self.run_check(base, {"BENCH_x.json": {"allocs": 0.02}})
            .returncode, 1)  # above the ceiling fails

    def test_min_and_max_band(self):
        base = {"BENCH_x.json": {"m": {"min": 1.0, "max": 2.0}}}
        self.assertEqual(
            self.run_check(base, {"BENCH_x.json": {"m": 1.5}})
            .returncode, 0)
        self.assertEqual(
            self.run_check(base, {"BENCH_x.json": {"m": 2.5}})
            .returncode, 1)

    def test_usage_error_exits_2(self):
        proc = subprocess.run([sys.executable, str(SCRIPT)],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()

/// \file shm_layout_dump.cpp
/// CLI around serve::shm_layout_manifest(): prints, checks, or regenerates
/// the golden shm ABI manifest (tests/serve/shm_layout.golden).
///
///   shm_layout_dump                   print manifest + hash to stdout
///   shm_layout_dump --check <golden>  exit 1 with a line diff on drift
///   shm_layout_dump --write <golden>  regenerate after an intended change
///
/// The --check form runs as ctest `shm.layout_manifest`, so any layout
/// drift in the shared-memory structs fails PR time with the exact lines
/// that moved; --write is the one-command ABI-bump workflow (the golden
/// diff then IS the review surface).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/shm_layout.hpp"

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--check <golden> | --write <golden>]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string manifest = socpinn::serve::shm_layout_manifest();
  const std::uint64_t hash = socpinn::serve::shm_layout_hash();

  if (argc == 1) {
    std::printf("%s", manifest.c_str());
    std::printf("hash %016llx\n", static_cast<unsigned long long>(hash));
    return 0;
  }
  if (argc != 3) return usage(argv[0]);
  const std::string mode = argv[1];
  const char* path = argv[2];

  if (mode == "--write") {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "shm_layout_dump: cannot write %s\n", path);
      return 2;
    }
    out << manifest;
    std::printf("shm_layout_dump: wrote %s (hash %016llx)\n", path,
                static_cast<unsigned long long>(hash));
    return 0;
  }

  if (mode != "--check") return usage(argv[0]);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr,
                 "shm_layout_dump: cannot read golden %s (regenerate with "
                 "--write)\n",
                 path);
    return 2;
  }
  std::ostringstream golden_stream;
  golden_stream << in.rdbuf();
  const std::string golden = golden_stream.str();
  if (golden == manifest) {
    std::printf("shm layout manifest matches %s (hash %016llx)\n", path,
                static_cast<unsigned long long>(hash));
    return 0;
  }

  // Line-level diff: enough to show exactly which field/offset moved.
  std::fprintf(stderr,
               "shm layout manifest DRIFTED from %s — the shared-memory ABI "
               "changed.\nIf intentional, regenerate: shm_layout_dump "
               "--write %s\n",
               path, path);
  const std::vector<std::string> want = split_lines(golden);
  const std::vector<std::string> got = split_lines(manifest);
  const std::size_t n = want.size() > got.size() ? want.size() : got.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string* w = i < want.size() ? &want[i] : nullptr;
    const std::string* g = i < got.size() ? &got[i] : nullptr;
    if (w != nullptr && g != nullptr && *w == *g) continue;
    if (w != nullptr) std::fprintf(stderr, "  -%s\n", w->c_str());
    if (g != nullptr) std::fprintf(stderr, "  +%s\n", g->c_str());
  }
  return 1;
}

/// \file socpinn_cli.cpp
/// Command-line front end for the library, so the full workflow runs
/// without writing C++: simulate datasets to CSV, train a model on CSV
/// traces, evaluate it at arbitrary horizons, and roll it over a planned
/// workload.
///
///   socpinn_cli --mode=simulate --dataset=sandia --out-dir=data/
///   socpinn_cli --mode=train --train-csv=data/train_0.csv,data/train_1.csv \
///               --horizon=120 --physics=120,240,360 --model-out=model.txt
///   socpinn_cli --mode=eval --model=model.txt --test-csv=data/test_0.csv \
///               --horizons=120,240,360
///   socpinn_cli --mode=rollout --model=model.txt --trace-csv=data/test_0.csv \
///               --horizon=120 --out=rollout.csv
///
/// CSV trace format: header `time_s,voltage,current,temp_c,soc` (the soc
/// column holds ground truth for training/eval; for rollout only the first
/// row's sensors are consumed).

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/model_io.hpp"
#include "data/lg.hpp"
#include "data/preprocess.hpp"
#include "data/sandia.hpp"
#include "nn/metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

using namespace socpinn;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<double> split_doubles(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& item : split_list(csv)) {
    out.push_back(std::stod(item));
  }
  return out;
}

std::vector<data::Trace> load_traces(const std::string& paths_csv,
                                     double smooth_s) {
  std::vector<data::Trace> traces;
  for (const std::string& path : split_list(paths_csv)) {
    data::Trace trace = data::Trace::from_csv(path);
    traces.push_back(smooth_s > 0.0 ? data::smooth_trace(trace, smooth_s)
                                    : std::move(trace));
  }
  if (traces.empty()) {
    throw std::invalid_argument("no input traces given");
  }
  return traces;
}

int run_simulate(const util::ArgParser& args) {
  const std::string dataset = args.get("dataset", "sandia");
  const std::string out_dir = args.get("out-dir", ".");
  std::filesystem::create_directories(out_dir);
  auto dump = [&](const std::vector<data::Trace>& traces,
                  const std::string& prefix) {
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const std::string path =
          out_dir + "/" + prefix + "_" + std::to_string(i) + ".csv";
      traces[i].to_csv(path);
      std::printf("wrote %s (%zu samples)\n", path.c_str(),
                  traces[i].size());
    }
  };
  if (dataset == "sandia") {
    const data::SandiaDataset ds = data::generate_sandia({});
    dump(ds.train_traces(), "train");
    dump(ds.test_traces(), "test");
  } else if (dataset == "lg") {
    const data::LgDataset ds = data::generate_lg({});
    dump(ds.train_traces(), "train");
    dump(ds.test_traces(), "test");
  } else {
    throw std::invalid_argument("unknown --dataset (use sandia|lg)");
  }
  return 0;
}

int run_train(const util::ArgParser& args) {
  core::ExperimentSetup setup;
  setup.train_traces = load_traces(args.get("train-csv", ""),
                                   args.get_double("smooth", 0.0));
  setup.native_horizon_s = args.get_double("horizon", 120.0);
  setup.cell.capacity_ah = args.get_double("capacity-ah", 3.0);
  setup.train.epochs =
      static_cast<std::size_t>(args.get_int("epochs", 200));
  setup.branch1_stride =
      static_cast<std::size_t>(args.get_int("stride", 1));
  setup.branch2_stride = setup.branch1_stride;

  core::VariantSpec variant{"No-PINN", core::VariantKind::kNoPinn, {}};
  if (args.has("physics")) {
    variant = {"PINN", core::VariantKind::kPinn,
               split_doubles(args.get("physics", ""))};
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  core::TrainedModel model = core::train_two_branch(setup, variant, seed);
  std::printf("trained %s (%zu params): branch1 loss %.4f, branch2 %.4f\n",
              variant.label.c_str(), model.net.num_params(),
              model.branch1_history.final_data_loss(),
              model.branch2_history.data_loss.empty()
                  ? 0.0
                  : model.branch2_history.final_data_loss());

  const std::string out = args.get("model-out", "model.txt");
  core::save_model(out, model.net);
  std::printf("model saved to %s\n", out.c_str());
  return 0;
}

int run_eval(const util::ArgParser& args) {
  core::TwoBranchNet net = core::load_model(args.get("model", "model.txt"));
  const std::vector<data::Trace> traces = load_traces(
      args.get("test-csv", ""), args.get_double("smooth", 0.0));
  const std::span<const data::Trace> span(traces);
  const auto stride = static_cast<std::size_t>(args.get_int("stride", 1));

  const auto b1 = data::build_branch1_data(span, stride);
  std::printf("SoC(t) estimation MAE: %.4f over %zu samples\n",
              nn::mae(net.estimate_batch(b1.x), b1.y), b1.size());
  for (double horizon : split_doubles(args.get("horizons", "120"))) {
    const auto eval = data::build_horizon_eval(span, horizon, stride);
    const core::HorizonPrediction pred = core::predict_cascade(net, eval);
    std::printf("SoC(t+%gs) prediction MAE: %.4f over %zu samples\n",
                horizon, nn::mae(pred.soc_pred, eval.target), eval.size());
  }
  return 0;
}

int run_rollout(const util::ArgParser& args) {
  core::TwoBranchNet net = core::load_model(args.get("model", "model.txt"));
  const std::vector<data::Trace> traces = load_traces(
      args.get("trace-csv", ""), args.get_double("smooth", 0.0));
  const double horizon = args.get_double("horizon", 120.0);
  const core::Rollout rollout =
      core::rollout_cascade(net, traces.front(), horizon);
  std::printf("rollout: %zu steps, final SoC %.4f (truth %.4f, |err| %.4f)\n",
              rollout.soc.size() - 1, rollout.soc.back(),
              rollout.truth.back(), rollout.final_abs_error());
  const std::string out = args.get("out", "rollout.csv");
  util::CsvDocument doc;
  doc.header = {"time_s", "soc_pred", "soc_true"};
  doc.columns = {rollout.times_s, rollout.soc, rollout.truth};
  util::write_csv(out, doc);
  std::printf("trajectory written to %s\n", out.c_str());
  return 0;
}

void print_usage() {
  std::printf(
      "usage: socpinn_cli --mode=simulate|train|eval|rollout [options]\n"
      "  simulate: --dataset=sandia|lg --out-dir=DIR\n"
      "  train:    --train-csv=a.csv,b.csv --horizon=S [--physics=S1,S2,..]\n"
      "            [--epochs=N --stride=N --smooth=S --capacity-ah=X\n"
      "             --seed=N --model-out=F]\n"
      "  eval:     --model=F --test-csv=a.csv,b.csv [--horizons=S1,S2,..]\n"
      "            [--stride=N --smooth=S]\n"
      "  rollout:  --model=F --trace-csv=a.csv --horizon=S [--out=F]\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  try {
    const util::ArgParser args(argc, argv);
    const std::string mode = args.get("mode", "");
    if (mode == "simulate") return run_simulate(args);
    if (mode == "train") return run_train(args);
    if (mode == "eval") return run_eval(args);
    if (mode == "rollout") return run_rollout(args);
    print_usage();
    return mode.empty() ? 1 : 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

#!/usr/bin/env python3
"""socpinn invariant linter — static enforcement of the serve stack's
concurrency, allocation, and floating-point contracts.

The system rests on invariants that are otherwise provable only at
runtime, and only on the paths a test happens to exercise:

  * The seqlock/command-channel protocols (serve/mailbox.hpp,
    serve/shm_transport.hpp) depend on EXACT acquire/release orderings.
    A defaulted memory order is seq_cst: correct but intent-hiding, and
    it costs real fences on weakly-ordered targets (ARM) — the paper's
    embedded-BMS deployment target.
  * Steady-state ticks are allocation-free (probed dynamically by the
    counting operator new in tests/serve/test_alloc_free.cpp). This
    linter is the static complement: functions annotated SOCPINN_HOT
    (src/util/annotations.hpp) must not contain allocation constructs
    unless each is waived with a justified SOCPINN_HOT_ALLOW comment.
  * f64 results are bitwise identical across scalar/AVX2/AVX-512/NEON
    because every kernel performs UNFUSED multiply-adds under a global
    -ffp-contract=off. A std::fma call or an FP_CONTRACT pragma anywhere
    outside nn/simd.hpp (the one place a fused path may ever be
    deliberately introduced and re-contracted) silently breaks that
    parity on exactly one ISA.

Checks (names usable in waiver comments and reports):

  atomic-order   every std::atomic / std::atomic_ref load / store /
                 exchange / fetch_* / CAS in serve/ must spell an
                 explicit std::memory_order argument (CAS: both success
                 AND failure orders).
  hot-alloc      no allocation constructs (new, make_unique/make_shared,
                 push_back/emplace_back/resize/reserve/insert/emplace/
                 assign/append, std::string / std::to_string /
                 stringstream construction, local std::vector) inside a
                 function whose DEFINITION is annotated SOCPINN_HOT.
                 Warm-capacity reuse is waived per line:
                     // SOCPINN_HOT_ALLOW(resize): reuses warm capacity
                 The construct name must match and the reason must be
                 non-empty; the waiver holds for the same or next line.
  fp-contract    no std::fma / fmaf / fmal and no FP_CONTRACT-style
                 pragmas outside nn/simd.hpp.
  seqlock-discipline
                 the single-writer seqlock protocol in serve/:
                 (a) every odd sequence bump (`store(s + 1, ...)`) is
                 followed, in the same function body, by a release fence
                 and the matching even store (`store(s + 2, ...)`);
                 (b) every even store spells memory_order_release;
                 (c) a slot publish call (`.publish(...)`, `.publish_*`)
                 may only appear inside a function whose own name starts
                 with `publish` — any other writer surface must declare
                 ownership on the call line (or the contiguous comment
                 block above it):
                     // SOCPINN_SEQLOCK_WRITER(owner): why single-writer
                 (d) no blocking construct (mutex locks, condition-
                 variable waits, sleeps, util::MutexLock / CondVar)
                 inside a SOCPINN_HOT body — hot paths sit on the
                 wait-free side of the seqlocks.

The linter is heuristic by design (stdlib-only Python, no C++ parser):
it masks comments/strings, balances parentheses across lines, and
resolves atomic receivers either lexically (an inline
std::atomic_ref<T>(x) temporary) or through the file-local set of
variables declared std::atomic/atomic_ref. That is precise enough for
this codebase's idiom and — more importantly — errs loudly: a false
positive demands an explicit order or a justified waiver, never a
silent pass.

Usage:
    invariant_lint.py [--root DIR] [files...]

With no files, scans every *.hpp/*.h/*.cpp under --root (default: the
repo's src/). Exit 0 clean, 1 findings, 2 usage error. Fixture-based
self-tests live in tools/lint/tests/ (run by ctest as lint.selftest);
the tree gate itself is the ctest entry lint.invariants.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------- masking

def mask_comments_and_strings(text: str):
    """Returns (masked, comments) where `masked` is `text` with comment
    and string/char-literal contents replaced by spaces (same length,
    newlines preserved, so offsets and line numbers carry over), and
    `comments` maps 1-based line number -> concatenated comment text on
    that line (used for waiver detection)."""
    out = list(text)
    comments: dict[int, str] = {}
    i, n = 0, len(text)
    line = 1

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    def record(a: int, b: int, start_line: int) -> None:
        ln = start_line
        seg_start = a
        for k in range(a, b + 1):
            if k == b or text[k] == "\n":
                comments.setdefault(ln, "")
                comments[ln] += text[seg_start:k]
                ln += 1
                seg_start = k + 1

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            record(i, j, line)
            blank(i, j)
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            record(i, j + 2, line)
            blank(i, j + 2)
            line += text.count("\n", i, j + 2)
            i = j + 2
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i + m.end())
                end = n if end < 0 else end + len(m.group(1)) + 2
                blank(i + m.end(), end)
                line += text.count("\n", i, end)
                i = end
            else:
                i += 1
        elif c == "'" and i > 0 and (text[i - 1].isalnum()
                                     or text[i - 1] == "_"):
            # C++14 digit separator (100'000) or a literal suffix — not a
            # character literal; treating it as one would swallow real
            # code (and comment lines) up to the next apostrophe.
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            blank(i + 1, min(j, n))
            line += text.count("\n", i, min(j, n) + 1)
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out), comments


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def balance(masked: str, pos: int, open_ch: str, close_ch: str) -> int:
    """pos indexes `open_ch`; returns the index just past its matching
    `close_ch` (or len(masked) if unbalanced)."""
    depth = 0
    for k in range(pos, len(masked)):
        if masked[k] == open_ch:
            depth += 1
        elif masked[k] == close_ch:
            depth -= 1
            if depth == 0:
                return k + 1
    return len(masked)


# --------------------------------------------------- check: atomic-order

ATOMIC_OPS = {
    "load": 1,
    "store": 1,
    "exchange": 1,
    "fetch_add": 1,
    "fetch_sub": 1,
    "fetch_and": 1,
    "fetch_or": 1,
    "fetch_xor": 1,
    "test_and_set": 1,
    "clear": 1,
    "wait": 1,
    "compare_exchange_weak": 2,
    "compare_exchange_strong": 2,
}

ATOMIC_DECL = re.compile(r"\bstd\s*::\s*atomic(?:_ref)?\s*<")
ATOMIC_TEMP_TAIL = re.compile(
    r"\bstd\s*::\s*atomic(?:_ref)?\s*<[^;{}]*>\s*$", re.S)
OP_CALL = re.compile(
    r"(\.|->)\s*(" + "|".join(ATOMIC_OPS) + r")\s*\(")


def atomic_decl_names(masked: str) -> set[str]:
    """File-local names declared as std::atomic<...> or
    std::atomic_ref<...> variables/members."""
    names: set[str] = set()
    for m in ATOMIC_DECL.finditer(masked):
        k = m.end() - 1  # at '<'
        depth = 0
        while k < len(masked):
            if masked[k] == "<":
                depth += 1
            elif masked[k] == ">":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        ident = re.match(r"\s*([A-Za-z_]\w*)", masked[k + 1 :])
        if ident:
            names.add(ident.group(1))
    return names


def receiver_is_atomic(masked: str, dot_pos: int, names: set[str]) -> bool:
    j = dot_pos - 1
    while j >= 0 and masked[j] in " \t\n":
        j -= 1
    if j < 0:
        return False
    if masked[j] == ")":
        depth = 0
        k = j
        while k >= 0:
            if masked[k] == ")":
                depth += 1
            elif masked[k] == "(":
                depth -= 1
                if depth == 0:
                    break
            k -= 1
        return bool(ATOMIC_TEMP_TAIL.search(masked[:k]))
    end = j + 1
    while j >= 0 and (masked[j].isalnum() or masked[j] == "_"):
        j -= 1
    return masked[j + 1 : end] in names


def check_atomic_order(rel: str, text: str, masked: str) -> list[tuple]:
    findings = []
    names = atomic_decl_names(masked)
    for m in OP_CALL.finditer(masked):
        dot = m.start(1)
        if masked[dot] == "-":  # '->' arrow: receiver scan from the '-'
            pass
        if not receiver_is_atomic(masked, dot, names):
            continue
        op = m.group(2)
        paren = m.end() - 1
        args = masked[paren : balance(masked, paren, "(", ")")]
        have = len(re.findall(r"\bmemory_order\w*", args))
        need = ATOMIC_OPS[op]
        if have < need:
            what = ("both success AND failure std::memory_order arguments"
                    if need == 2 else "an explicit std::memory_order")
            findings.append((
                rel, line_of(masked, m.start()), "atomic-order",
                f"atomic {op}() without {what} — a defaulted seq_cst "
                f"hides the protocol's intended ordering and costs fences "
                f"on weakly-ordered targets; spell the weakest correct "
                f"order explicitly"))
    return findings


# ------------------------------------------------------ check: hot-alloc

HOT_MARK = re.compile(r"\bSOCPINN_HOT\b(?!_ALLOW)")
HOT_ALLOW = re.compile(
    r"SOCPINN_HOT_ALLOW\(\s*([A-Za-z_:,\s]+?)\s*\)\s*:\s*(\S.*)")

BANNED = [
    ("new", re.compile(r"\bnew\b")),
    ("make_unique", re.compile(r"\bmake_unique\b")),
    ("make_shared", re.compile(r"\bmake_shared\b")),
    ("container-growth", re.compile(
        r"(?:\.|->)\s*(push_back|emplace_back|resize|reserve|insert"
        r"|emplace|assign|append)\s*\(")),
    ("string", re.compile(
        r"\bstd\s*::\s*(?:string|wstring|ostringstream|istringstream"
        r"|stringstream)\b")),
    ("to_string", re.compile(r"\bstd\s*::\s*to_string\b")),
    ("vector", re.compile(r"\bstd\s*::\s*vector\s*<")),
]


def waived(construct: str, lineno: int, comments: dict[int, str],
           comment_only: set[int]) -> bool:
    """A construct on `lineno` is waived by SOCPINN_HOT_ALLOW(name): reason
    on the same line or in the contiguous COMMENT-ONLY block directly above
    it (a justification may wrap onto several comment lines; a code line —
    even one with a trailing comment — ends the block, so one waiver never
    silently covers a second construct further down)."""
    def matches(ln: int) -> bool:
        for m in HOT_ALLOW.finditer(comments.get(ln, "")):
            allowed = {a.strip() for a in m.group(1).split(",")}
            if construct in allowed and m.group(2).strip():
                return True
        return False

    if matches(lineno):
        return True
    ln = lineno - 1
    while ln > 0 and ln in comment_only:
        if matches(ln):
            return True
        ln -= 1
    return False


def hot_body_span(masked: str, mark_end: int):
    """From the end of a SOCPINN_HOT token, locates the annotated
    function's body. Returns (start, end) indices of the brace block, or
    None for a bodyless declaration (annotation belongs on the
    definition — declarations are skipped, not errors)."""
    depth = 0
    k = mark_end
    while k < len(masked):
        c = masked[k]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == ";" and depth == 0:
            return None
        elif c == "{" and depth == 0:
            return k, balance(masked, k, "{", "}")
        k += 1
    return None


def check_hot_alloc(rel: str, text: str, masked: str,
                    comments: dict[int, str]) -> list[tuple]:
    findings = []
    masked_lines = masked.splitlines()
    comment_only = {
        ln for ln in comments
        if ln <= len(masked_lines) and not masked_lines[ln - 1].strip()}
    for mark in HOT_MARK.finditer(masked):
        line_start = masked.rfind("\n", 0, mark.start()) + 1
        if masked[line_start:mark.start()].lstrip().startswith("#"):
            continue  # the #define itself
        span = hot_body_span(masked, mark.end())
        if span is None:
            continue
        body_start, body_end = span
        body = masked[body_start:body_end]
        for name, pattern in BANNED:
            for m in pattern.finditer(body):
                lineno = line_of(masked, body_start + m.start())
                label = m.group(1) if name == "container-growth" else name
                if waived(label, lineno, comments, comment_only):
                    continue
                findings.append((
                    rel, lineno, "hot-alloc",
                    f"allocation construct '{label}' inside a SOCPINN_HOT "
                    f"function — hot paths are allocation-free in steady "
                    f"state (the static twin of test_alloc_free.cpp); if "
                    f"this line only reuses warm capacity, waive it with "
                    f"// SOCPINN_HOT_ALLOW({label}): <why it cannot "
                    f"allocate once warm>"))
    return findings


# --------------------------------------------- check: seqlock-discipline

SEQ_ODD_STORE = re.compile(r"(?:\.|->)\s*store\s*\(\s*(\w+)\s*\+\s*1\s*,")
SEQ_EVEN_STORE = re.compile(r"(?:\.|->)\s*store\s*\(\s*(\w+)\s*\+\s*2\s*,")
RELEASE_FENCE = re.compile(
    r"\batomic_thread_fence\s*\(\s*(?:std\s*::\s*)?memory_order_release")
PUBLISH_CALL = re.compile(r"(?:\.|->)\s*(publish\w*)\s*\(")
SEQLOCK_WRITER = re.compile(
    r"SOCPINN_SEQLOCK_WRITER\(\s*([^)]+?)\s*\)\s*:\s*(\S.*)")
CALL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "static_assert", "new", "delete", "throw",
    "assert", "defined", "co_await", "co_return", "co_yield", "constexpr",
    "noexcept", "requires"))
FUNC_NAME = re.compile(r"\b([A-Za-z_~]\w*)\s*\(")
# Characters that may sit between a definition's parameter list and its
# `{`: qualifiers (const noexcept override final), ref-qualifiers,
# trailing return types (-> T, including templates and qualified names).
# Crucially EXCLUDES `=` `(` `)` `;` `}` so declarations, calls, and
# ctor-init lists are never mistaken for plain definitions.
DEF_GAP_OK = frozenset(" \t\n\r" "abcdefghijklmnopqrstuvwxyz"
                       "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
                       ":<>,&*->[]")

BLOCKING = [
    ("mutex-lock", re.compile(
        r"\b(?:std\s*::\s*)?(?:lock_guard|unique_lock|scoped_lock)\b"
        r"|\bMutexLock\b|(?:\.|->)\s*(?:try_)?lock\s*\(|"
        r"(?:\.|->)\s*unlock\s*\(")),
    ("condvar-wait", re.compile(
        r"\b(?:std\s*::\s*)?condition_variable\w*\b|\bCondVar\b"
        r"|(?:\.|->)\s*wait(?:_for|_until)?\s*\(")),
    ("sleep", re.compile(
        r"\b(?:sleep_for|sleep_until|nanosleep|usleep|sleep)\s*\(")),
]


def function_spans(masked: str) -> list[tuple]:
    """Heuristic list of (name, body_start, body_end) for every function
    DEFINITION: identifier + balanced parameter list + a gap of qualifier
    characters only + `{`. Calls (`;` or operators follow), declarations,
    and ctor-init lists (contain `(`/`:` + parens) all fail the gap test;
    lambdas have no identifier before `(`. Good enough to answer "which
    function does this position live in" for this codebase's idiom."""
    spans = []
    for m in FUNC_NAME.finditer(masked):
        name = m.group(1)
        if name in CALL_KEYWORDS:
            continue
        close = balance(masked, m.end() - 1, "(", ")")
        if close >= len(masked):
            continue
        k = close
        while k < len(masked) and masked[k] != "{":
            if masked[k] not in DEF_GAP_OK:
                break
            k += 1
        if k >= len(masked) or masked[k] != "{":
            continue
        spans.append((name, k, balance(masked, k, "{", "}")))
    return spans


def enclosing_function(spans: list[tuple], pos: int):
    """The innermost definition span containing `pos`, or None."""
    best = None
    for name, start, end in spans:
        if start < pos < end and (best is None or start > best[1]):
            best = (name, start, end)
    return best


def writer_waived(lineno: int, comments: dict[int, str],
                  comment_only: set[int]) -> bool:
    """A publish call on `lineno` is waived by a SOCPINN_SEQLOCK_WRITER
    marker (non-empty owner AND reason) on the same line or in the
    contiguous comment-only block directly above — same shape as the
    hot-alloc waiver, so one marker never leaks onto a second call."""
    def matches(ln: int) -> bool:
        m = SEQLOCK_WRITER.search(comments.get(ln, ""))
        return bool(m and m.group(1).strip() and m.group(2).strip())

    if matches(lineno):
        return True
    ln = lineno - 1
    while ln > 0 and ln in comment_only:
        if matches(ln):
            return True
        ln -= 1
    return False


def check_seqlock_discipline(rel: str, text: str, masked: str,
                             comments: dict[int, str]) -> list[tuple]:
    findings = []
    masked_lines = masked.splitlines()
    comment_only = {
        ln for ln in comments
        if ln <= len(masked_lines) and not masked_lines[ln - 1].strip()}
    spans = function_spans(masked)

    # (a) odd bump -> release fence -> matching even store, in order,
    # inside the same function body (the writer's critical section).
    for m in SEQ_ODD_STORE.finditer(masked):
        var = m.group(1)
        here = enclosing_function(spans, m.start())
        tail = masked[m.end():here[2]] if here else masked[m.end():]
        fence = RELEASE_FENCE.search(tail)
        even = re.compile(
            r"(?:\.|->)\s*store\s*\(\s*" + re.escape(var) +
            r"\s*\+\s*2\s*,").search(tail)
        if not fence or not even or even.start() < fence.start():
            findings.append((
                rel, line_of(masked, m.start()), "seqlock-discipline",
                f"odd seqlock bump store({var} + 1, ...) without a "
                f"following std::atomic_thread_fence(memory_order_release) "
                f"and matching store({var} + 2, ...) in the same function "
                f"— readers could observe payload bytes torn across the "
                f"unclosed write window"))

    # (b) the even (closing) store must itself be a release.
    for m in SEQ_EVEN_STORE.finditer(masked):
        paren = masked.index("(", m.start())
        args = masked[paren:balance(masked, paren, "(", ")")]
        if not re.search(r"\bmemory_order_release\b", args):
            findings.append((
                rel, line_of(masked, m.start()), "seqlock-discipline",
                f"even seqlock store({m.group(1)} + 2, ...) without "
                f"memory_order_release — the closing store is what makes "
                f"the payload visible-before-even to acquire readers"))

    # (c) writer confinement: publish calls only from publish* functions
    # or under an explicit ownership marker.
    for m in PUBLISH_CALL.finditer(masked):
        here = enclosing_function(spans, m.start())
        if here is not None and here[0].startswith("publish"):
            continue
        lineno = line_of(masked, m.start())
        if writer_waived(lineno, comments, comment_only):
            continue
        where = f"'{here[0]}'" if here else "an unrecognized scope"
        findings.append((
            rel, lineno, "seqlock-discipline",
            f"seqlock publish call '.{m.group(1)}(...)' from {where} — "
            f"slots are single-writer, so publishes may only come from a "
            f"publish* method or a declared owner; mark a deliberate "
            f"writer surface with // SOCPINN_SEQLOCK_WRITER(owner): "
            f"<why this is the one writer>"))

    # (d) no blocking constructs inside SOCPINN_HOT bodies: hot code is
    # the wait-free side of every seqlock, so a mutex/cv/sleep there is a
    # protocol break, not a style issue. No waiver on purpose.
    for mark in HOT_MARK.finditer(masked):
        line_start = masked.rfind("\n", 0, mark.start()) + 1
        if masked[line_start:mark.start()].lstrip().startswith("#"):
            continue
        span = hot_body_span(masked, mark.end())
        if span is None:
            continue
        body_start, body_end = span
        body = masked[body_start:body_end]
        for name, pattern in BLOCKING:
            for b in pattern.finditer(body):
                findings.append((
                    rel, line_of(masked, body_start + b.start()),
                    "seqlock-discipline",
                    f"blocking construct ({name}) inside a SOCPINN_HOT "
                    f"function — hot paths are the wait-free side of the "
                    f"serve seqlocks; blocking here can stall every "
                    f"reader behind one preempted writer"))
    return findings


# ---------------------------------------------------- check: fp-contract

FMA_CALL = re.compile(r"\b(?:std\s*::\s*)?fma[fl]?\s*\(")
PRAGMA_LINE = re.compile(r"^\s*#\s*pragma\b.*contract", re.I)
FP_ALLOWLIST = ("nn/simd.hpp",)


def check_fp_contract(rel: str, text: str, masked: str) -> list[tuple]:
    if rel.replace("\\", "/").endswith(FP_ALLOWLIST):
        return []
    findings = []
    for m in FMA_CALL.finditer(masked):
        findings.append((
            rel, line_of(masked, m.start()), "fp-contract",
            "std::fma performs ONE rounding where every kernel in this "
            "tree performs two (global -ffp-contract=off) — it would "
            "break f64 bitwise parity across ISAs; fused paths may only "
            "be introduced in nn/simd.hpp with the contract revisited"))
    for i, raw in enumerate(text.splitlines(), start=1):
        if PRAGMA_LINE.match(raw):
            findings.append((
                rel, i, "fp-contract",
                "FP_CONTRACT-style pragma overrides the global "
                "-ffp-contract=off that pins cross-ISA f64 bitwise "
                "parity; only nn/simd.hpp may renegotiate contraction"))
    return findings


# ----------------------------------------------------------------- drive

def in_serve_scope(rel: str) -> bool:
    return "serve" in Path(rel).parts


def lint_file(path: Path, root: Path) -> list[tuple]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [(str(path), 0, "io", f"unreadable: {e}")]
    rel = str(path.relative_to(root)) if path.is_relative_to(root) \
        else str(path)
    masked, comments = mask_comments_and_strings(text)
    findings = []
    if in_serve_scope(rel):
        findings += check_atomic_order(rel, text, masked)
        findings += check_seqlock_discipline(rel, text, masked, comments)
    findings += check_hot_alloc(rel, text, masked, comments)
    findings += check_fp_contract(rel, text, masked)
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="socpinn invariant linter (see module docstring)")
    parser.add_argument(
        "--root", type=Path,
        default=Path(__file__).resolve().parents[2] / "src",
        help="directory scanned when no files are given; also the base "
             "for scope decisions (serve/, nn/simd.hpp)")
    parser.add_argument("files", nargs="*", type=Path)
    args = parser.parse_args(argv)

    root = args.root.resolve()
    files = [p.resolve() for p in args.files] or sorted(
        p for ext in ("*.hpp", "*.h", "*.cpp") for p in root.rglob(ext))
    if not files:
        print(f"invariant_lint: no sources under {root}", file=sys.stderr)
        return 2

    findings = []
    for path in files:
        findings += lint_file(path, root)
    for rel, lineno, check, msg in findings:
        print(f"{rel}:{lineno}: [{check}] {msg}")
    if findings:
        print(f"\ninvariant_lint: {len(findings)} finding(s) across "
              f"{len(files)} file(s)")
        return 1
    print(f"invariant_lint: clean ({len(files)} files, checks: "
          f"atomic-order seqlock-discipline hot-alloc fp-contract)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

/// \file thread_safety_negative.cpp
/// Negative-compile fixture proving clang's -Wthread-safety actually
/// fires on this codebase's annotation vocabulary (util/sync.hpp). NOT
/// part of any library or test binary — CMake compiles it twice with
/// clang (-fsyntax-only -Werror=thread-safety-analysis):
///
///   * tsa.negative_fixture_fires: as-is, expected to FAIL (WILL_FAIL) —
///     the unguarded access below must be diagnosed;
///   * tsa.negative_fixture_clean: with -DSOCPINN_TSA_EXPECT_CLEAN, which
///     compiles only the correctly locked variant, expected to succeed —
///     so a silently broken analysis (or a broken fixture) cannot pass as
///     "no warnings".
///
/// If the analysis regresses (macro rot, flag drop), the WILL_FAIL test
/// compiles cleanly and ctest reports the failure.

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  void bump_locked() SOCPINN_EXCLUDES(mu_) {
    const socpinn::util::MutexLock lock(mu_);
    ++value_;
  }

#if !defined(SOCPINN_TSA_EXPECT_CLEAN)
  // The violation under test: writing a guarded member with no lock held.
  // clang: "writing variable 'value_' requires holding mutex 'mu_'".
  void bump_unguarded() SOCPINN_EXCLUDES(mu_) { ++value_; }
#endif

 private:
  socpinn::util::Mutex mu_;
  int value_ SOCPINN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump_locked();
  return 0;
}

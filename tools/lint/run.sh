#!/usr/bin/env bash
# Single local entry point for the static-analysis gate — reproduces the
# CI `static-analysis` job's verdicts:
#
#   1. invariant linter (atomic-order, hot-alloc, fp-contract) + its
#      fixture self-tests and the bench-regression checker's unit tests
#   2. header self-containment (every public header compiles standalone)
#   3. clang-tidy over compile_commands.json — skipped with a notice if
#      clang-tidy is not installed (CI always runs it)
#
# Usage: tools/lint/run.sh [build-dir]     (default: build)
set -u -o pipefail

REPO="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD="${1:-$REPO/build}"
PY="${PYTHON:-python3}"
status=0

step() { printf '\n== %s ==\n' "$*"; }

step "invariant lint (src/)"
"$PY" "$REPO/tools/lint/invariant_lint.py" --root "$REPO/src" || status=1

step "linter self-tests (fixtures)"
"$PY" -m unittest discover -s "$REPO/tools/lint/tests" || status=1

step "bench-regression checker tests"
"$PY" -m unittest discover -s "$REPO/tools/tests" || status=1

step "header self-containment"
if [ ! -d "$BUILD" ]; then
  cmake -B "$BUILD" -S "$REPO" || status=1
fi
cmake --build "$BUILD" --target header_selfcheck -j || status=1

step "clang-tidy"
if command -v run-clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported unconditionally by CMakeLists.txt.
  run-clang-tidy -p "$BUILD" -quiet "$REPO/src/.*" || status=1
elif command -v clang-tidy >/dev/null 2>&1; then
  # No run-clang-tidy wrapper: drive clang-tidy over the library sources.
  find "$REPO/src" -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p "$BUILD" --quiet || status=1
else
  echo "clang-tidy not installed — skipped locally (CI runs it;"
  echo "install clang-tidy to reproduce that part of the gate)"
fi

if [ "$status" -ne 0 ]; then
  printf '\nstatic-analysis gate: FAILED\n'
else
  printf '\nstatic-analysis gate: OK\n'
fi
exit "$status"

#!/usr/bin/env bash
# Single local entry point for the static-analysis gate — reproduces the
# CI `static-analysis` job's verdicts:
#
#   1. invariant linter (atomic-order, seqlock-discipline, hot-alloc,
#      fp-contract) + its fixture self-tests and the bench-regression
#      checker's unit tests
#   2. header self-containment (every public header compiles standalone)
#   3. clang-tidy over compile_commands.json — skipped with a notice if
#      clang-tidy is not installed (CI always runs it)
#
# Usage: tools/lint/run.sh [--changed] [build-dir]    (default: build)
#
#   --changed  scope clang-tidy to the .cpp files that differ from
#              origin/main (the whole-tree linter and header check still
#              run — they are cheap; clang-tidy is the slow step)
#
# Ends with a per-step PASS/FAIL/SKIP summary table and exits non-zero
# if any step failed.
set -u -o pipefail

REPO="$(cd "$(dirname "$0")/../.." && pwd)"
PY="${PYTHON:-python3}"
CHANGED=0
BUILD=""
for arg in "$@"; do
  case "$arg" in
    --changed) CHANGED=1 ;;
    -h|--help) sed -n '2,20p' "$0"; exit 0 ;;
    *) BUILD="$arg" ;;
  esac
done
BUILD="${BUILD:-$REPO/build}"

# The gate is mostly Python; a missing interpreter must be a loud
# configuration error, never a silently green run.
if ! command -v "$PY" >/dev/null 2>&1; then
  echo "error: '$PY' not found — the invariant linter and its self-tests" >&2
  echo "cannot run. Install python3 or set PYTHON=/path/to/python." >&2
  exit 2
fi

STEP_NAMES=()
STEP_RESULTS=()
status=0

# record <name> <PASS|FAIL|SKIP>
record() {
  STEP_NAMES+=("$1")
  STEP_RESULTS+=("$2")
  [ "$2" = FAIL ] && status=1
}

# run_step <name> <cmd...>: prints a banner, runs, records the verdict.
run_step() {
  local name="$1"
  shift
  printf '\n== %s ==\n' "$name"
  if "$@"; then record "$name" PASS; else record "$name" FAIL; fi
}

run_step "invariant lint (src/)" \
  "$PY" "$REPO/tools/lint/invariant_lint.py" --root "$REPO/src"

run_step "linter self-tests (fixtures)" \
  "$PY" -m unittest discover -s "$REPO/tools/lint/tests"

run_step "bench-regression checker tests" \
  "$PY" -m unittest discover -s "$REPO/tools/tests"

header_selfcheck() {
  if [ ! -d "$BUILD" ]; then
    cmake -B "$BUILD" -S "$REPO" || return 1
  fi
  cmake --build "$BUILD" --target header_selfcheck -j
}
run_step "header self-containment" header_selfcheck

# clang-tidy: the one slow step, hence the --changed scoping.
tidy_files() {
  # .cpp files under src/ differing from origin/main (added/modified).
  git -C "$REPO" diff --name-only --diff-filter=d origin/main -- 'src/*.cpp' \
    2>/dev/null | while IFS= read -r f; do printf '%s\n' "$REPO/$f"; done
}

printf '\n== clang-tidy ==\n'
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed — skipped locally (CI runs it;"
  echo "install clang-tidy to reproduce that part of the gate)"
  record "clang-tidy" SKIP
elif [ "$CHANGED" = 1 ] &&
     ! git -C "$REPO" rev-parse --verify -q origin/main >/dev/null; then
  echo "--changed requested but origin/main is unknown to git —"
  echo "falling back to the full tree"
  CHANGED=0
fi
if command -v clang-tidy >/dev/null 2>&1; then
  if [ "$CHANGED" = 1 ]; then
    files="$(tidy_files)"
    if [ -z "$files" ]; then
      echo "--changed: no src/ .cpp files differ from origin/main — skipped"
      record "clang-tidy (changed)" SKIP
    elif printf '%s\n' "$files" |
         xargs clang-tidy -p "$BUILD" --quiet; then
      record "clang-tidy (changed)" PASS
    else
      record "clang-tidy (changed)" FAIL
    fi
  elif command -v run-clang-tidy >/dev/null 2>&1; then
    # compile_commands.json is exported unconditionally by CMakeLists.txt.
    if run-clang-tidy -p "$BUILD" -quiet "$REPO/src/.*"; then
      record "clang-tidy" PASS
    else
      record "clang-tidy" FAIL
    fi
  else
    # No run-clang-tidy wrapper: drive clang-tidy over the library sources.
    if find "$REPO/src" -name '*.cpp' -print0 |
       xargs -0 clang-tidy -p "$BUILD" --quiet; then
      record "clang-tidy" PASS
    else
      record "clang-tidy" FAIL
    fi
  fi
fi

printf '\n== summary ==\n'
i=0
while [ "$i" -lt "${#STEP_NAMES[@]}" ]; do
  printf '  %-34s %s\n' "${STEP_NAMES[$i]}" "${STEP_RESULTS[$i]}"
  i=$((i + 1))
done

if [ "$status" -ne 0 ]; then
  printf '\nstatic-analysis gate: FAILED\n'
else
  printf '\nstatic-analysis gate: OK\n'
fi
exit "$status"

#!/usr/bin/env python3
"""Fixture-based self-tests for tools/lint/invariant_lint.py.

The gate must be provably non-vacuous: every seeded violation in
fixtures/bad/ must be flagged (per check, per construct), and the clean
idioms in fixtures/good/ — including the waiver syntax and the
mutex-based SnapshotHandle look-alike — must pass silently. Run by
ctest as lint.selftest.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))

import invariant_lint as lint  # noqa: E402

FIXTURES = HERE / "fixtures"
BAD = FIXTURES / "bad" / "src"
GOOD = FIXTURES / "good" / "src"


def run_dir(root: Path) -> list[tuple]:
    findings = []
    for ext in ("*.hpp", "*.h", "*.cpp"):
        for path in sorted(root.rglob(ext)):
            findings += lint.lint_file(path, root)
    return findings


import re


def expected_lines(path: Path) -> list[int]:
    """1-based line numbers tagged `// EXPECT <check>` in a fixture."""
    tag = re.compile(r"//\s*EXPECT\s+(?:atomic-order|hot-alloc|fp-contract"
                     r"|seqlock-discipline)")
    return [i for i, raw in enumerate(path.read_text().splitlines(), 1)
            if tag.search(raw)]


class TestMasking(unittest.TestCase):
    def test_masks_comments_and_strings_preserving_offsets(self):
        text = 'a.load(); // seq.store()\nconst char* s = "fetch_add(";\n'
        masked, comments = lint.mask_comments_and_strings(text)
        self.assertEqual(len(masked), len(text))
        self.assertNotIn("seq.store", masked)
        self.assertNotIn("fetch_add", masked)
        self.assertIn("a.load()", masked)
        self.assertIn("seq.store()", comments[1])

    def test_raw_string_masked(self):
        text = 'auto s = R"(x.store(); new int;)"; b.resize(1);\n'
        masked, _ = lint.mask_comments_and_strings(text)
        self.assertNotIn("new int", masked)
        self.assertIn("b.resize(1)", masked)

    def test_multiline_comment_line_numbers(self):
        text = "/* one\ntwo */\nseq.load();\n"
        masked, comments = lint.mask_comments_and_strings(text)
        self.assertEqual(lint.line_of(masked, masked.index("seq")), 3)
        self.assertIn("one", comments[1])
        self.assertIn("two", comments[2])


class TestAtomicOrder(unittest.TestCase):
    FIXTURE = BAD / "serve" / "bad_atomic.hpp"

    def findings(self):
        return [f for f in run_dir(BAD) if f[2] == "atomic-order"]

    def test_every_seeded_violation_is_flagged(self):
        flagged = {f[1] for f in self.findings()
                   if f[0].endswith("bad_atomic.hpp")}
        self.assertEqual(flagged, set(expected_lines(self.FIXTURE)))

    def test_cas_demands_both_orders(self):
        msgs = [f[3] for f in self.findings()]
        self.assertTrue(any("success AND failure" in m for m in msgs))

    def test_clean_idioms_pass(self):
        clean = [f for f in run_dir(GOOD) if f[2] == "atomic-order"]
        self.assertEqual(clean, [])

    def test_scope_is_serve_only(self):
        # The same defaulted ops outside serve/ are out of scope.
        self.assertFalse(lint.in_serve_scope("nn/panel.cpp"))
        self.assertTrue(lint.in_serve_scope("serve/mailbox.hpp"))


class TestHotAlloc(unittest.TestCase):
    FIXTURE = BAD / "serve" / "bad_hot.cpp"

    def findings(self):
        return [f for f in run_dir(BAD) if f[2] == "hot-alloc"]

    def test_every_seeded_violation_is_flagged(self):
        flagged = {f[1] for f in self.findings()
                   if f[0].endswith("bad_hot.cpp")}
        self.assertEqual(flagged, set(expected_lines(self.FIXTURE)))

    def test_each_construct_kind_fires(self):
        msgs = " ".join(f[3] for f in self.findings())
        for construct in ("push_back", "resize", "'new'", "make_unique",
                          "string", "to_string", "vector"):
            self.assertIn(construct, msgs)

    def test_bare_and_mismatched_waivers_do_not_waive(self):
        text = self.FIXTURE.read_text()
        lines = text.splitlines()
        flagged = {f[1] for f in self.findings()
                   if f[0].endswith("bad_hot.cpp")}
        for marker in ("tick_bare_waiver", "tick_wrong_waiver"):
            start = next(i for i, l in enumerate(lines, 1) if marker in l)
            self.assertTrue(any(start < ln <= start + 3 for ln in flagged),
                            f"waiver in {marker} wrongly accepted")

    def test_waived_and_cold_code_passes(self):
        clean = [f for f in run_dir(GOOD) if f[2] == "hot-alloc"]
        self.assertEqual(clean, [])


class TestSeqlockDiscipline(unittest.TestCase):
    FIXTURE = BAD / "serve" / "bad_seqlock.hpp"

    def findings(self):
        return [f for f in run_dir(BAD) if f[2] == "seqlock-discipline"]

    def test_every_seeded_violation_is_flagged(self):
        flagged = {f[1] for f in self.findings()
                   if f[0].endswith("bad_seqlock.hpp")}
        self.assertEqual(flagged, set(expected_lines(self.FIXTURE)))

    def test_each_protocol_break_kind_fires(self):
        msgs = " ".join(f[3] for f in self.findings())
        self.assertIn("odd seqlock bump", msgs)          # (a)
        self.assertIn("even seqlock store", msgs)        # (b)
        self.assertIn("single-writer", msgs)             # (c)
        self.assertIn("blocking construct", msgs)        # (d)

    def test_clean_protocol_and_declared_writers_pass(self):
        clean = [f for f in run_dir(GOOD) if f[2] == "seqlock-discipline"]
        self.assertEqual(clean, [])

    def test_scope_is_serve_only(self):
        # The same torn-writer shape outside serve/ is out of scope (only
        # the serve layer speaks the seqlock protocol).
        text = ("struct S { void publish_torn() {\n"
                "  seq.store(s + 1, std::memory_order_relaxed);\n"
                "} };\n")
        masked, comments = lint.mask_comments_and_strings(text)
        self.assertTrue(
            lint.check_seqlock_discipline("serve/x.hpp", text, masked,
                                          comments))
        self.assertFalse(lint.in_serve_scope("nn/x.hpp"))

    def test_function_spans_resolve_the_innermost_definition(self):
        text = ("void outer() {\n"
                "  if (x) { helper(1); }\n"
                "}\n"
                "void publish_all() { slot.publish(1.0); }\n")
        masked, _ = lint.mask_comments_and_strings(text)
        spans = lint.function_spans(masked)
        names = {s[0] for s in spans}
        self.assertIn("outer", names)
        self.assertIn("publish_all", names)
        self.assertNotIn("if", names)
        self.assertNotIn("helper", names)  # a call, not a definition
        pos = masked.index(".publish(")
        self.assertEqual(lint.enclosing_function(spans, pos)[0],
                         "publish_all")


class TestFpContract(unittest.TestCase):
    FIXTURE = BAD / "nn" / "bad_fma.cpp"

    def findings(self):
        return [f for f in run_dir(BAD) if f[2] == "fp-contract"]

    def test_every_seeded_violation_is_flagged(self):
        flagged = {f[1] for f in self.findings()
                   if f[0].endswith("bad_fma.cpp")}
        self.assertEqual(flagged, set(expected_lines(self.FIXTURE)))

    def test_simd_hpp_is_allowlisted(self):
        clean = [f for f in run_dir(GOOD) if f[2] == "fp-contract"]
        self.assertEqual(clean, [])


class TestEdgeCases(unittest.TestCase):
    """Parser edge cases that once bit (or would bite) real trees: CRLF
    checkouts, waivers on the file's unterminated last line, calls whose
    argument lists span lines, and C++14 digit separators."""

    def lint_text(self, relpath: str, text: str) -> list[tuple]:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(text.encode())
            return lint.lint_file(path, Path(tmp))

    def test_crlf_line_endings_keep_line_numbers_and_waivers(self):
        # A Windows checkout: findings land on the right lines and a
        # waiver comment still waives.
        text = ("#define SOCPINN_HOT [[gnu::hot]]\r\n"
                "SOCPINN_HOT void tick(S& s) {\r\n"
                "  s.buf.resize(8);\r\n"
                "  // SOCPINN_HOT_ALLOW(push_back): warm capacity\r\n"
                "  s.buf.push_back(1.0);\r\n"
                "}\r\n")
        findings = self.lint_text("serve/crlf.hpp", text)
        self.assertEqual([(f[1], f[2]) for f in findings],
                         [(3, "hot-alloc")])

    def test_waiver_on_last_line_without_trailing_newline(self):
        # The construct AND its same-line waiver sit on the very last
        # line of a file that lacks a trailing newline: the comment must
        # still be recorded (the recorder's end-of-file segment) and the
        # waiver honored.
        text = ("#define SOCPINN_HOT [[gnu::hot]]\n"
                "SOCPINN_HOT void tick(S& s) {\n"
                "  s.buf.resize(8); }  // SOCPINN_HOT_ALLOW(resize): warm")
        self.assertEqual(self.lint_text("serve/eof.hpp", text), [])

    def test_multiline_atomic_argument_lists(self):
        # An order on a later line of the SAME call satisfies the check;
        # a CAS split across lines with only one order still fails.
        good = ("std::atomic<int> seq{0};\n"
                "void f() {\n"
                "  seq.store(\n"
                "      1,\n"
                "      std::memory_order_release);\n"
                "}\n")
        self.assertEqual(self.lint_text("serve/ok.hpp", good), [])
        bad = ("std::atomic<int> seq{0};\n"
                "void f(int& e) {\n"
                "  seq.compare_exchange_strong(\n"
                "      e, e + 1,\n"
                "      std::memory_order_acq_rel);\n"
                "}\n")
        findings = self.lint_text("serve/cas.hpp", bad)
        self.assertEqual([(f[1], f[2]) for f in findings],
                         [(3, "atomic-order")])

    def test_digit_separators_are_not_char_literals(self):
        # 100'000 must not open a bogus char literal that swallows the
        # following comment (this exact shape desynced comment line
        # numbers in a real file).
        text = ("void nap() { timespec ts{0, 100'000}; }\n"
                "// SOCPINN_SEQLOCK_WRITER(owner): reason\n"
                "void g(Slot& s) {\n"
                "  s.publish(1.0);\n"
                "}\n")
        masked, comments = lint.mask_comments_and_strings(text)
        self.assertIn("SOCPINN_SEQLOCK_WRITER", comments.get(2, ""))
        self.assertIn("100", masked)


class TestCli(unittest.TestCase):
    SCRIPT = HERE.parent / "invariant_lint.py"

    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *argv],
            capture_output=True, text=True)

    def test_bad_tree_exits_1_with_path_line_check_format(self):
        proc = self.run_cli("--root", str(BAD))
        self.assertEqual(proc.returncode, 1)
        self.assertRegex(proc.stdout, r"bad_atomic\.hpp:\d+: \[atomic-order\]")
        self.assertRegex(proc.stdout, r"bad_hot\.cpp:\d+: \[hot-alloc\]")
        self.assertRegex(proc.stdout, r"bad_fma\.cpp:\d+: \[fp-contract\]")

    def test_good_tree_exits_0(self):
        proc = self.run_cli("--root", str(GOOD))
        self.assertEqual(proc.returncode, 0)
        self.assertIn("clean", proc.stdout)

    def test_empty_root_is_a_usage_error(self):
        proc = self.run_cli("--root", str(FIXTURES / "nonexistent"))
        self.assertEqual(proc.returncode, 2)

    def test_real_tree_is_clean(self):
        src = HERE.parents[2] / "src"
        proc = self.run_cli("--root", str(src))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()

#pragma once
// Fixture: seeded violations of the single-writer seqlock protocol —
// each line tagged EXPECT must be flagged by seqlock-discipline.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#define SOCPINN_HOT [[gnu::hot]]

namespace fixture {

struct Slot {
  std::atomic<std::uint64_t> seq{0};
  double payload = 0.0;

  // (a) an odd bump that never closes the write window: no release
  // fence, no matching even store — readers can observe torn payload.
  void publish_torn(double v) {
    const std::uint64_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_relaxed);  // EXPECT seqlock-discipline
    payload = v;
  }

  // (a) window "closed" BEFORE the fence: the even store is not ordered
  // after the payload write, so the protocol is still torn.
  void publish_unfenced(double v) {
    const std::uint64_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_relaxed);  // EXPECT seqlock-discipline
    payload = v;
    seq.store(s + 2, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
  }

  // (b) a correctly fenced window whose CLOSING store is relaxed — the
  // even value can become visible without publishing the payload.
  void publish_relaxed_close(double v) {
    const std::uint64_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    payload = v;
    seq.store(s + 2, std::memory_order_relaxed);  // EXPECT seqlock-discipline
  }
};

struct Engine {
  Slot slot;

  // (c) a publish call from a function that neither is a publish*
  // surface nor declares ownership.
  void tick() {
    slot.publish_torn(1.0);  // EXPECT seqlock-discipline
  }

  // (c) a bare ownership marker (no reason) must NOT waive.
  void swap_model() {
    // SOCPINN_SEQLOCK_WRITER(Engine::swap_model):
    slot.publish_torn(2.0);  // EXPECT seqlock-discipline
  }

  // (c) a marker above an intervening CODE line must NOT leak downward.
  void rotate() {
    // SOCPINN_SEQLOCK_WRITER(Engine::rotate): sole writer while rotating
    slot.publish_torn(3.0);
    slot.publish_torn(4.0);  // EXPECT seqlock-discipline
  }
};

struct HotShared {
  std::mutex mu;
  std::condition_variable cv;
};

// (d) blocking constructs inside SOCPINN_HOT bodies: the hot path is the
// wait-free side of the seqlocks.
SOCPINN_HOT void hot_tick(HotShared& h) {
  std::lock_guard<std::mutex> lk(h.mu);  // EXPECT seqlock-discipline
  std::this_thread::sleep_for(            // EXPECT seqlock-discipline
      std::chrono::microseconds(1));
}

SOCPINN_HOT void hot_wait(HotShared& h) {
  std::unique_lock<std::mutex> lk(h.mu);  // EXPECT seqlock-discipline
  h.cv.wait(lk);                          // EXPECT seqlock-discipline
}

}  // namespace fixture

// Fixture: allocation constructs inside SOCPINN_HOT bodies — each line
// tagged EXPECT must be flagged by hot-alloc.
#include <memory>
#include <string>
#include <vector>

#define SOCPINN_HOT [[gnu::hot]]

namespace fixture {

struct Scratch {
  std::vector<double> buf;
};

SOCPINN_HOT void tick(Scratch& s) {
  s.buf.push_back(1.0);            // EXPECT hot-alloc (push_back)
  s.buf.resize(8);                 // EXPECT hot-alloc (resize)
  auto* p = new double[4];         // EXPECT hot-alloc (new)
  delete[] p;
  auto q = std::make_unique<int>(1);  // EXPECT hot-alloc (make_unique)
  (void)q;
  std::string label = "x";         // EXPECT hot-alloc (string)
  label += std::to_string(3);      // EXPECT hot-alloc (to_string)
  std::vector<int> local;          // EXPECT hot-alloc (vector)
  (void)local;
}

// A bare waiver (no reason) must NOT waive.
SOCPINN_HOT void tick_bare_waiver(Scratch& s) {
  // SOCPINN_HOT_ALLOW(resize):
  s.buf.resize(8);  // EXPECT hot-alloc (resize)
}

// A waiver naming a different construct must NOT waive.
SOCPINN_HOT void tick_wrong_waiver(Scratch& s) {
  // SOCPINN_HOT_ALLOW(reserve): warm capacity
  s.buf.resize(8);  // EXPECT hot-alloc (resize)
}

// A waiver above an intervening CODE line must NOT leak downward.
SOCPINN_HOT void tick_leaky_waiver(Scratch& s) {
  // SOCPINN_HOT_ALLOW(push_back): warm capacity
  s.buf.push_back(1.0);
  s.buf.push_back(2.0);  // EXPECT hot-alloc (push_back)
}

// A param-drain-shaped body (the per-cell CellParams mailbox drain): an
// unwaived staging allocation inside the drain loop must be flagged just
// like any other hot body.
struct ParamUpdate {
  double capacity_ah;
  double coulombic_eff;
};

SOCPINN_HOT void drain_params(Scratch& s) {
  std::vector<ParamUpdate> staged;     // EXPECT hot-alloc (vector)
  for (int cell = 0; cell < 8; ++cell) {
    staged.push_back({3.0, 1.0});      // EXPECT hot-alloc (push_back)
    s.buf.resize(staged.size());       // EXPECT hot-alloc (resize)
  }
}

// Cold functions may allocate freely — no marker, no findings.
void cold_setup(Scratch& s) { s.buf.resize(1024); }

}  // namespace fixture

#pragma once
// Fixture: every atomic op here omits (or under-specifies) the memory
// order — each line tagged EXPECT must be flagged by atomic-order.
#include <atomic>
#include <cstdint>

namespace fixture {

struct Channel {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<bool> stop{false};

  std::uint32_t peek() const {
    return seq.load();  // EXPECT atomic-order
  }

  void bump() {
    seq.fetch_add(1);  // EXPECT atomic-order
    seq.store(0);      // EXPECT atomic-order
  }

  bool try_claim(std::uint32_t& expected) {
    // CAS with only a success order: the failure order still defaults.
    return seq.compare_exchange_strong(  // EXPECT atomic-order
        expected, expected + 1, std::memory_order_acq_rel);
  }

  void signal(std::uint64_t& word) {
    std::atomic_ref<std::uint64_t>(word).store(1);  // EXPECT atomic-order
  }
};

}  // namespace fixture

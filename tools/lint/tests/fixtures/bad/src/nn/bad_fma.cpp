// Fixture: fused-multiply-add outside nn/simd.hpp — every EXPECT line
// must be flagged by fp-contract.
#include <cmath>

#pragma STDC FP_CONTRACT ON  // EXPECT fp-contract (pragma)

namespace fixture {

double mac(double a, double b, double c) {
  return std::fma(a, b, c);  // EXPECT fp-contract (std::fma)
}

float macf(float a, float b, float c) {
  return fmaf(a, b, c);  // EXPECT fp-contract (fmaf)
}

}  // namespace fixture

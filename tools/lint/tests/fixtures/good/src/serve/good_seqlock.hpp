#pragma once
// Fixture: clean seqlock idioms — the canonical single-writer protocol,
// a declared non-publish writer surface, and a wait-free hot body. None
// of these may be flagged by seqlock-discipline.
#include <atomic>
#include <cstdint>

#define SOCPINN_HOT [[gnu::hot]]

namespace fixture {

struct Slot {
  std::atomic<std::uint64_t> seq{0};
  double payload = 0.0;

  // The canonical writer: odd bump (relaxed), release fence, payload,
  // even release store — mailbox.hpp's SeqlockSlot3::publish shape.
  void publish(double v) {
    const std::uint64_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    payload = v;
    seq.store(s + 2, std::memory_order_release);
  }

  // Readers are unconstrained by the writer rules.
  bool consume(double& out) const {
    const std::uint64_t before = seq.load(std::memory_order_acquire);
    if (before & 1) return false;
    out = payload;
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq.load(std::memory_order_relaxed) == before;
  }
};

struct Fleet {
  Slot slot;

  // A publish* surface may publish without further ceremony.
  void publish_sensors(double v) { slot.publish(v); }

  // Any other surface declares ownership with a justified marker —
  // same line or the contiguous comment block directly above.
  void swap_model(double v) {
    // SOCPINN_SEQLOCK_WRITER(Fleet::swap_model): the parent is the one
    // writer of this slot; concurrent swaps are externally serialized.
    slot.publish(v);
  }

  void reset(double v) {
    slot.publish(v);  // SOCPINN_SEQLOCK_WRITER(Fleet::reset): one writer
  }
};

// Hot bodies stay on the wait-free side: atomics and fences only.
SOCPINN_HOT bool hot_poll(const Slot& s, double& out) {
  return s.consume(out);
}

}  // namespace fixture

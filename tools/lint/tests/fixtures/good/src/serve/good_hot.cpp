// Fixture: SOCPINN_HOT bodies whose constructs are all correctly waived,
// plus banned tokens hidden in comments/strings that must NOT fire.
#include <string>
#include <vector>

#define SOCPINN_HOT [[gnu::hot]]

namespace fixture {

struct Scratch {
  std::vector<double> buf;
  std::vector<int> idx;
};

SOCPINN_HOT void tick(Scratch& s) {
  // SOCPINN_HOT_ALLOW(resize): shrinks into warm capacity after the
  // one-time warm-up tick (justification may wrap onto several
  // comment-only lines; the whole block belongs to the next code line)
  s.buf.resize(8);
  s.idx.push_back(1);  // SOCPINN_HOT_ALLOW(push_back): warm capacity
  // A comment mentioning push_back or new std::string must not fire.
  const char* msg = "resize() and make_unique in a string literal";
  (void)msg;
}

// Multi-construct waiver: both names listed, one justified reason.
SOCPINN_HOT void drain(Scratch& s) {
  // SOCPINN_HOT_ALLOW(push_back, resize): warm capacity, bounded
  s.buf.resize(4);
}

// A bodyless annotated declaration is skipped, not an error.
SOCPINN_HOT void forward(Scratch& s);

void cold(Scratch& s) {
  s.buf.reserve(1024);  // unannotated: allocation is fine here
  std::string name = "cold path may build strings";
  (void)name;
}

}  // namespace fixture

#pragma once
// Fixture: the clean idioms the linter must accept without findings.
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

namespace fixture {

struct Channel {
  std::atomic<std::uint32_t> seq{0};

  std::uint32_t peek() const {
    return seq.load(std::memory_order_acquire);
  }

  void bump() {
    seq.fetch_add(1, std::memory_order_release);
  }

  bool try_claim(std::uint32_t& expected) {
    return seq.compare_exchange_strong(expected, expected + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  }

  void signal(std::uint64_t& word) {
    std::atomic_ref<std::uint64_t>(word).store(
        1, std::memory_order_release);
  }
};

/// Mutex-based snapshot handle: its load()/store() are NOT atomic ops
/// and must not be flagged (receiver resolution via the declared-name
/// set, not method names alone).
class Handle {
 public:
  std::shared_ptr<const int> load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
  }
  void store(std::shared_ptr<const int> next) {
    std::lock_guard<std::mutex> lock(mu_);
    ptr_ = std::move(next);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const int> ptr_;
};

inline std::shared_ptr<const int> use(const Handle& model) {
  return model.load();  // not an atomic: no finding
}

}  // namespace fixture

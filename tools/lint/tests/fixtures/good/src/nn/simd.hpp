#pragma once
// Fixture standing in for the real nn/simd.hpp: the ONE file where a
// fused path may be deliberately introduced — fp-contract must stay
// silent here.
#include <cmath>

namespace fixture {

inline double fused(double a, double b, double c) {
  return std::fma(a, b, c);  // allowlisted: nn/simd.hpp
}

}  // namespace fixture

#!/usr/bin/env python3
"""Fail the build when a benchmark JSON regresses against committed
thresholds.

Usage: check_bench_regression.py <thresholds.json> <dir-with-BENCH-jsons>

The thresholds file maps each benchmark JSON filename to metric bounds:

    {
      "BENCH_inference.json": {
        "speedup_batched_vs_legacy_loop": {"min": 1.5},
        "steady_state_allocs_per_batched_forward": {"max": 0.01}
      },
      ...
    }

A bound may carry a "when" key naming a gate metric in the same JSON:

    "simd_avx2_speedup_f64_vs_scalar_b256":
      {"min": 1.15, "when": "simd_supported_avx2"}

When the gate metric is absent or falsy (0), the bound is SKIPped — this
is how per-ISA speedup floors apply only on runners whose CPU carries the
ISA, without weakening the floors where it does. A truthy gate makes the
metric mandatory again, so a rotted benchmark that stops emitting a gated
metric still fails on hosts that support it.

Every listed file must exist and every listed metric must satisfy its
bounds; a missing file, missing metric, or violated bound is a hard
failure. Coverage is also enforced in the OTHER direction: every
BENCH_*.json emitted into the bench dir must have a thresholds entry, so a
renamed or newly added benchmark cannot silently escape regression
checking (previously a rename left the new file unchecked forever).
Bounds are deliberately conservative relative to developer machines — CI
runners are small and noisy — but strict enough to catch a broken batched
path (speedup collapsing to ~1x) or an allocation sneaking back into a
steady-state loop.
"""

import json
import sys
from pathlib import Path


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    thresholds_path = Path(sys.argv[1])
    bench_dir = Path(sys.argv[2])
    thresholds = json.loads(thresholds_path.read_text())

    failures = []
    for filename, metrics in thresholds.items():
        if filename.startswith("_"):  # comment keys
            continue
        path = bench_dir / filename
        if not path.is_file():
            failures.append(f"{filename}: missing (expected in {bench_dir})")
            continue
        data = json.loads(path.read_text())
        for metric, bounds in metrics.items():
            gate = bounds.get("when")
            if gate is not None and not data.get(gate):
                print(f"SKIP {filename}: {metric} (gate '{gate}' is off)")
                continue
            if metric not in data:
                failures.append(f"{filename}: metric '{metric}' missing")
                continue
            value = data[metric]
            lo = bounds.get("min")
            hi = bounds.get("max")
            ok = (lo is None or value >= lo) and (hi is None or value <= hi)
            bound_str = " ".join(
                s for s in (f">= {lo}" if lo is not None else "",
                            f"<= {hi}" if hi is not None else "") if s)
            line = f"{filename}: {metric} = {value} (required {bound_str})"
            if ok:
                print(f"PASS {line}")
            else:
                failures.append(line)

    # Reverse coverage: every emitted benchmark JSON must be listed in the
    # thresholds file. Without this, renaming a benchmark (or adding a new
    # one) silently passes — the old name fails loudly above, but nothing
    # would ever look at the new file, and its thresholds would rot.
    known = {name for name in thresholds if not name.startswith("_")}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        if path.name not in known:
            failures.append(
                f"{path.name}: present but not listed in {thresholds_path}"
                " — add thresholds for it; if the benchmark was renamed or"
                " removed, delete this stale file from the build dir")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("\nall benchmark thresholds satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
